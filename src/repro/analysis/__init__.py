"""Project-invariant static analysis for the ABS reproduction.

Four PRs in, several of the repo's correctness properties are
*conventions* rather than types: telemetry names must match
``repro.telemetry.schema``, determinism forbids global RNG state in the
search stack, ``AbsConfig`` knobs must be plumbed through every layer,
kernel backends must stay engine-free, and the Figure-5 shared-memory
exchange depends on a hand-rolled seqlock/SPSC store ordering.  This
package turns those conventions into a CI gate:

- :mod:`repro.analysis.core` — a small rule-registry AST lint framework
  (findings with ``file:line``, severities, ``# repro: noqa[rule]``
  suppressions) exposed as ``python -m repro analyze``.
- :mod:`repro.analysis.rules` — the core project rules
  (``telemetry-consistency``, ``rng-discipline``, ``config-plumbing``,
  ``kernel-purity``, ``shm-protocol``).
- :mod:`repro.analysis.lockcheck` — the ``lock-discipline`` rule: a
  machine-checked guarded-by convention (``# guarded-by: <lock>``
  annotations) for the service/fleet/supervisor/tcp thread-level
  state, with lock-order cycle detection and ``Condition.wait``
  predicate-loop enforcement.
- :mod:`repro.analysis.interleave` — a deterministic interleaving
  explorer that drives the real ``TargetMailbox`` / ``SolutionRing``
  byte-level steps through exhaustive small-depth reader/writer
  schedules, proving no torn read or lost wraparound is observable.
- :mod:`repro.analysis.lifecycle` — the same explorer applied one
  layer up: the ``SolverService`` job lifecycle (submit / dispatch /
  cancel / cache-insert / close), proving no schedule caches a
  partial result, loses a queue slot, double-dispatches, or finishes
  DONE without a result.

Rule catalog and suppression syntax: ``docs/analysis.md``.
"""

from __future__ import annotations

from repro.analysis.core import (
    FINDING_SCHEMA_VERSION,
    SEVERITIES,
    Finding,
    Module,
    Rule,
    all_rules,
    analyze_paths,
    get_rule,
    render_findings,
    severity_rank,
)

__all__ = [
    "FINDING_SCHEMA_VERSION",
    "Finding",
    "Module",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "analyze_paths",
    "get_rule",
    "render_findings",
    "severity_rank",
]
