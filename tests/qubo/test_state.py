"""Tests for SearchState: the incrementally maintained solution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qubo import QuboMatrix, SearchState
from repro.qubo.energy import delta_vector, energy


class TestConstruction:
    def test_zeros_state(self, small_qubo):
        st_ = SearchState.zeros(small_qubo)
        assert st_.energy == 0
        assert np.array_equal(st_.delta, np.diagonal(small_qubo.W))
        assert st_.flips == 0

    def test_from_bits_computes_both(self, small_qubo, rng):
        x = rng.integers(0, 2, small_qubo.n, dtype=np.uint8)
        st_ = SearchState.from_bits(small_qubo, x)
        assert st_.energy == energy(small_qubo, x)
        assert np.array_equal(st_.delta, delta_vector(small_qubo, x))

    def test_energy_and_delta_must_come_together(self, small_qubo):
        x = np.zeros(small_qubo.n, dtype=np.uint8)
        with pytest.raises(ValueError, match="together"):
            SearchState(small_qubo, x, energy_value=0)

    def test_bad_delta_shape(self, small_qubo):
        x = np.zeros(small_qubo.n, dtype=np.uint8)
        with pytest.raises(ValueError):
            SearchState(small_qubo, x, energy_value=0, delta=np.zeros(3, dtype=np.int64))

    def test_input_copied(self, small_qubo):
        x = np.zeros(small_qubo.n, dtype=np.uint8)
        st_ = SearchState.from_bits(small_qubo, x)
        x[0] = 1
        assert st_.x[0] == 0


class TestFlip:
    def test_flip_updates_everything(self, small_qubo):
        st_ = SearchState.zeros(small_qubo)
        applied = st_.flip(2)
        assert applied == small_qubo.W[2, 2]
        assert st_.x[2] == 1
        assert st_.flips == 1
        st_.validate()

    @given(st.lists(st.integers(0, 11), min_size=1, max_size=40))
    def test_flip_sequence_stays_consistent(self, flips):
        q = QuboMatrix.random(12, seed=77)
        st_ = SearchState.zeros(q)
        for k in flips:
            st_.flip(k)
        st_.validate()
        assert st_.flips == len(flips)

    def test_flip_out_of_range(self, small_qubo):
        st_ = SearchState.zeros(small_qubo)
        with pytest.raises(IndexError):
            st_.flip(small_qubo.n)


class TestNeighborQueries:
    def test_neighbor_energies_match_direct(self, small_qubo, rng):
        x = rng.integers(0, 2, small_qubo.n, dtype=np.uint8)
        st_ = SearchState.from_bits(small_qubo, x)
        ne = st_.neighbor_energies()
        for k in range(small_qubo.n):
            flipped = x.copy()
            flipped[k] ^= 1
            assert ne[k] == energy(small_qubo, flipped)

    def test_best_neighbor(self, small_qubo, rng):
        x = rng.integers(0, 2, small_qubo.n, dtype=np.uint8)
        st_ = SearchState.from_bits(small_qubo, x)
        k, e = st_.best_neighbor()
        assert e == st_.neighbor_energies().min()
        assert e == st_.energy + st_.delta[k]

    def test_hamming(self, small_qubo):
        st_ = SearchState.zeros(small_qubo)
        other = np.zeros(small_qubo.n, dtype=np.uint8)
        other[:4] = 1
        assert st_.hamming_to(other) == 4
        assert st_.hamming_to(st_.x) == 0


class TestCopyAndDiagnostics:
    def test_copy_is_independent(self, small_qubo):
        a = SearchState.zeros(small_qubo)
        b = a.copy()
        b.flip(0)
        assert a.x[0] == 0 and b.x[0] == 1
        assert a.energy != b.energy or small_qubo.W[0, 0] == 0
        a.validate()
        b.validate()

    def test_copy_preserves_flip_count(self, small_qubo):
        a = SearchState.zeros(small_qubo)
        a.flip(1)
        assert a.copy().flips == 1

    def test_validate_detects_corruption(self, small_qubo):
        st_ = SearchState.zeros(small_qubo)
        st_.energy += 1
        with pytest.raises(AssertionError):
            st_.validate()

    def test_repr(self, small_qubo):
        assert f"n={small_qubo.n}" in repr(SearchState.zeros(small_qubo))

    def test_weights_property_shared(self, small_qubo):
        st_ = SearchState.zeros(small_qubo)
        assert st_.weights is small_qubo.W
