"""Tests for the telemetry bus and counter registry."""

import pytest

from repro.telemetry import (
    NULL_BUS,
    CounterRegistry,
    MemorySink,
    NullBus,
    TelemetryBus,
)


class TestCounterRegistry:
    def test_starts_empty(self):
        reg = CounterRegistry()
        assert len(reg) == 0
        assert reg.snapshot() == {}
        assert reg.get("anything") == 0

    def test_inc_accumulates(self):
        reg = CounterRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 2)
        assert reg.get("a") == 5
        assert reg.get("b") == 2

    def test_snapshot_sorted_and_copied(self):
        reg = CounterRegistry()
        reg.inc("z")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap) == ["a", "z"]
        snap["a"] = 99
        assert reg.get("a") == 1

    def test_reset(self):
        reg = CounterRegistry()
        reg.inc("x", 7)
        reg.reset()
        assert reg.snapshot() == {}


class TestTelemetryBus:
    def test_emits_to_all_sinks_in_order(self):
        s1, s2 = MemorySink(), MemorySink()
        bus = TelemetryBus([s1])
        bus.attach(s2)
        bus.emit("solve.start", mode="sync")
        bus.emit("solve.end", best_energy=-1)
        assert [e.name for e in s1.events] == ["solve.start", "solve.end"]
        assert [e.name for e in s2.events] == ["solve.start", "solve.end"]

    def test_seq_strictly_increasing(self):
        sink = MemorySink()
        bus = TelemetryBus([sink])
        for _ in range(5):
            bus.emit("tick")
        assert [e.seq for e in sink.events] == [1, 2, 3, 4, 5]

    def test_timestamps_relative_and_nondecreasing(self):
        times = iter([10.0, 10.5, 11.25])
        sink = MemorySink()
        bus = TelemetryBus([sink], clock=lambda: next(times))
        bus.emit("a")
        bus.emit("b")
        assert [e.t for e in sink.events] == [0.5, 1.25]

    def test_detach(self):
        sink = MemorySink()
        bus = TelemetryBus([sink])
        bus.detach(sink)
        bus.emit("gone")
        assert sink.events == []
        bus.detach(sink)  # no-op on a sink that is not attached

    def test_enabled_flag(self):
        assert TelemetryBus().enabled is True
        assert NullBus().enabled is False
        assert NULL_BUS.enabled is False

    def test_context_manager_closes_sinks(self, tmp_path):
        from repro.telemetry import JsonlSink

        path = tmp_path / "t.jsonl"
        with TelemetryBus() as bus:
            bus.attach(JsonlSink(path))
            bus.emit("solve.start", mode="sync")
        assert path.read_text().count("\n") == 1


class TestNullBus:
    def test_everything_is_a_noop(self):
        bus = NullBus()
        bus.emit("whatever", x=1)
        bus.counters.inc("a", 100)
        assert bus.counters.snapshot() == {}
        assert bus.sinks == ()
        bus.close()

    def test_shared_instance_never_accumulates(self):
        NULL_BUS.counters.inc("pool.inserted", 10)
        assert NULL_BUS.counters.get("pool.inserted") == 0

    def test_context_manager(self):
        with NullBus() as bus:
            bus.emit("x")
