"""Parameter-sweep harness over :class:`~repro.abs.config.AbsConfig`.

Benchmark-grade experiments (like the paper's Table 2 bits-per-thread
sweep, or our window ablation) share a pattern: vary one or two solver
knobs on one instance, measure quality/rate per point, print a table.
This module factors the pattern out so new sweeps are one-liners.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.abs.config import AbsConfig
from repro.abs.result import SolveResult
from repro.abs.solver import AdaptiveBulkSearch
from repro.qubo.matrix import WeightsLike
from repro.utils.tables import Table


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome."""

    params: dict[str, Any]
    result: SolveResult

    @property
    def label(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.params.items())


def sweep(
    weights: WeightsLike,
    base_config: AbsConfig,
    grid: Mapping[str, Sequence[Any]],
    *,
    mode: str = "sync",
    repeats: int = 1,
) -> list[SweepPoint]:
    """Solve once per grid point (cartesian product over ``grid``).

    Each point replaces the named fields of ``base_config``.  With
    ``repeats > 1``, each point runs with ``repeats`` derived seeds and
    the best result is kept (the paper's repeat-and-report style).
    """
    if not grid:
        raise ValueError("grid must name at least one parameter")
    field_names = {f.name for f in dataclasses.fields(AbsConfig)}
    for key in grid:
        if key not in field_names:
            raise ValueError(f"unknown AbsConfig field {key!r}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    keys = list(grid.keys())
    points: list[SweepPoint] = []
    base_seed = base_config.seed if base_config.seed is not None else 0
    for combo in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        best: SolveResult | None = None
        for r in range(repeats):
            cfg = dataclasses.replace(
                base_config, seed=base_seed + 104729 * r, **params
            )
            res = AdaptiveBulkSearch(weights, cfg).solve(mode)
            if best is None or res.best_energy < best.best_energy:
                best = res
        points.append(SweepPoint(params=params, result=best))
    return points


def render_sweep(points: Sequence[SweepPoint], *, title: str | None = None) -> str:
    """Render sweep outcomes as an aligned table."""
    if not points:
        raise ValueError("no sweep points to render")
    keys = list(points[0].params.keys())
    table = Table(
        [*keys, "best energy", "evaluated", "rate (/s)"],
        title=title or "Parameter sweep",
    )
    for p in points:
        table.add_row(
            [
                *[p.params[k] for k in keys],
                p.result.best_energy,
                f"{p.result.evaluated:.3g}",
                f"{p.result.search_rate:.3g}",
            ]
        )
    return table.render()


def best_point(points: Sequence[SweepPoint]) -> SweepPoint:
    """The sweep point with the lowest best energy."""
    if not points:
        raise ValueError("no sweep points")
    return min(points, key=lambda p: p.result.best_energy)
