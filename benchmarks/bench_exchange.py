"""Exchange-ring + batched-GA hot-path benchmark (paper Figure 5).

Measures the *host-side* cost of one exchange round — consume a
device's ``(B, n)`` result batch, absorb it into the pool, generate
``B`` fresh GA targets, publish them — for the two transport/GA
combinations:

- ``queue+scalar`` — the pre-ring baseline: unpacked arrays pickled
  through ``multiprocessing.Queue``, targets generated one
  ``generate_one`` call at a time, solutions absorbed row by row;
- ``shm+batched`` — the Figure-5 realization: bit-packed
  shared-memory rings/mailboxes, one vectorized ``generate`` call,
  one ``insert_batch`` absorb.

Both lanes move identical payloads, so the speedup is pure exchange +
GA hot-path engineering.  The acceptance point is the paper-scale
``n=1024, B=1088`` (1088 blocks per GPU, Table 2's largest per-GPU
block count); the target there is ≥ 3×.  Results land in
``benchmarks/results/BENCH_exchange.json``.

Runnable both ways::

    pytest benchmarks/bench_exchange.py
    PYTHONPATH=src python benchmarks/bench_exchange.py
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

import numpy as np

from repro.abs.buffers import pack_solutions
from repro.abs.exchange import SolutionRing, TargetMailbox
from repro.ga.host import GaConfig, TargetGenerator
from repro.ga.pool import SolutionPool
from repro.utils.tables import Table

try:  # standalone execution has no package context for conftest
    from benchmarks.conftest import FULL, RESULTS_DIR
except ImportError:  # pragma: no cover - `python benchmarks/bench_exchange.py`
    import os

    FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")
    RESULTS_DIR = Path(__file__).parent / "results"

_POINTS = (
    # (n, B, rounds) — small, medium, and the acceptance point
    # (n=1024 with the paper's 1088 blocks per GPU).
    (256, 64, 30),
    (512, 256, 15),
    (1024, 1088, 8),
)
if FULL:
    _POINTS += ((2048, 1088, 5),)

#: Host pool capacity (the paper's m); fixed across lanes and points.
_POOL_CAPACITY = 64


def _make_payload(n: int, blocks: int, seed: int):
    rng = np.random.default_rng(seed)
    energies = rng.integers(-10_000, 0, blocks).astype(np.int64)
    X = rng.integers(0, 2, (blocks, n), dtype=np.uint8)
    return energies, X


def _make_host(n: int, seed: int):
    pool = SolutionPool(n, _POOL_CAPACITY)
    pool.seed_random(np.random.default_rng(seed), _POOL_CAPACITY)
    gen = TargetGenerator(pool, GaConfig(), seed=seed)
    return pool, gen


def _measure_queue_scalar(n: int, blocks: int, rounds: int) -> dict:
    """Baseline lane: mp.Queue of unpacked arrays + scalar GA + row absorb."""
    ctx = multiprocessing.get_context()
    result_q = ctx.Queue()
    target_q = ctx.Queue()
    pool, gen = _make_host(n, seed=1)
    payloads = [_make_payload(n, blocks, seed) for seed in range(rounds)]
    # Prime both queue feeder threads so startup cost stays out of the
    # timed region.
    result_q.put(payloads[0])
    result_q.get(timeout=10)
    target_q.put(np.zeros((blocks, n), dtype=np.uint8))
    target_q.get(timeout=10)

    t0 = time.perf_counter()
    for energies, X in payloads:
        result_q.put((energies, X))          # device ships a round
        got_e, got_x = result_q.get(timeout=10)
        for i in range(blocks):              # scalar absorb
            pool.insert(got_x[i], int(got_e[i]))
        targets = gen.generate_scalar(blocks)
        target_q.put(targets)                # host answers with targets
        target_q.get(timeout=10)
    elapsed = time.perf_counter() - t0
    result_q.close()
    target_q.close()
    return {"elapsed_s": round(elapsed, 6), "per_round_ms": round(1e3 * elapsed / rounds, 3)}


def _measure_shm_batched(n: int, blocks: int, rounds: int) -> dict:
    """Rings lane: bit-packed shm ring/mailbox + batched GA + batch absorb."""
    ring = SolutionRing.create(blocks, n, slots=4)
    mailbox = TargetMailbox.create(blocks, n)
    try:
        pool, gen = _make_host(n, seed=1)
        meta = np.zeros(16, dtype=np.int64)
        meta[1] = blocks  # count slot
        payloads = [
            (e, pack_solutions(X))
            for e, X in (_make_payload(n, blocks, seed) for seed in range(rounds))
        ]
        t0 = time.perf_counter()
        for energies, packed in payloads:
            ring.write(meta, energies, packed)   # device ships a round
            _, got_e, got_packed = ring.consume()
            X = np.unpackbits(got_packed, axis=1, count=n)
            pool.insert_batch(X, got_e)          # batched absorb
            targets = gen.generate(blocks)
            mailbox.publish(targets, epoch=0)    # host answers with targets
            mailbox.fetch(0, epoch=0)
        elapsed = time.perf_counter() - t0
    finally:
        ring.unlink()
        mailbox.unlink()
    return {"elapsed_s": round(elapsed, 6), "per_round_ms": round(1e3 * elapsed / rounds, 3)}


def run_bench() -> dict:
    points = []
    for n, blocks, rounds in _POINTS:
        baseline = _measure_queue_scalar(n, blocks, rounds)
        rings = _measure_shm_batched(n, blocks, rounds)
        points.append(
            {
                "n": n,
                "blocks": blocks,
                "rounds": rounds,
                "queue_scalar": baseline,
                "shm_batched": rings,
                "speedup": round(
                    baseline["elapsed_s"] / rings["elapsed_s"], 3
                ),
                "acceptance_point": (n, blocks) == (1024, 1088),
            }
        )
    payload = {
        "bench": "exchange",
        "full_scale": FULL,
        "pool_capacity": _POOL_CAPACITY,
        "target_speedup_at_acceptance": 3.0,
        "points": points,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_exchange.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return payload


def _render(payload: dict) -> str:
    table = Table(
        ["n", "B", "queue+scalar ms/round", "shm+batched ms/round", "speedup"],
        title="Host exchange + GA hot path (per round)",
    )
    for p in payload["points"]:
        mark = " *" if p["acceptance_point"] else ""
        table.add_row(
            [
                p["n"],
                p["blocks"],
                f"{p['queue_scalar']['per_round_ms']:.2f}",
                f"{p['shm_batched']['per_round_ms']:.2f}",
                f"{p['speedup']:.2f}x{mark}",
            ]
        )
    return table.render() + "\n(* acceptance point, target >= 3x)"


def test_bench_exchange(report):
    payload = run_bench()
    report("Exchange rings (Figure 5)", _render(payload))
    for p in payload["points"]:
        assert p["shm_batched"]["elapsed_s"] > 0
        if p["acceptance_point"]:
            assert p["speedup"] >= 3.0, (
                f"shm+batched must be >= 3x the queue+scalar baseline at "
                f"n={p['n']}, B={p['blocks']}; measured {p['speedup']}x"
            )


if __name__ == "__main__":  # pragma: no cover
    print(_render(run_bench()))
