"""Host ↔ device exchange buffers (Figure 5).

In the paper the target and solution buffers live in GPU global memory
and carry a global counter the host polls with ``cudaMemcpyAsync``.
Here:

- :class:`TargetBuffer` / :class:`SolutionBuffer` are the in-process
  equivalents (plain arrays plus monotone counters) used by the sync
  mode and by unit tests of the protocol;
- :class:`SharedWeights` places the (large, read-only) weight matrix in
  POSIX shared memory so the multi-process mode never pickles or copies
  it per worker — the analogue of each GPU holding ``W`` in its global
  memory;
- :func:`pack_solutions` / :func:`unpack_solutions` convert between
  one-byte-per-bit solution matrices and the bit-packed wire format the
  shared-memory exchange rings use (:mod:`repro.abs.exchange`) — the
  analogue of the paper packing 32 solution bits per register word.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable

import numpy as np

from repro.utils.validation import check_bit_vector


def packed_length(n: int) -> int:
    """Bytes per bit-packed solution of ``n`` bits (``⌈n / 8⌉``)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (int(n) + 7) // 8


def pack_solutions(X: np.ndarray) -> np.ndarray:
    """Bit-pack a ``(B, n)`` 0/1 matrix into ``(B, ⌈n/8⌉)`` bytes.

    The packed form is what crosses the process boundary in the
    shared-memory exchange — 8× smaller than one byte per bit.
    """
    X = np.asarray(X, dtype=np.uint8)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D (B, n), got shape {X.shape}")
    return np.packbits(X, axis=1)


def unpack_solutions(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_solutions`: ``(B, ⌈n/8⌉)`` → ``(B, n)``."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise ValueError(f"packed must be 2-D, got shape {packed.shape}")
    if packed.shape[1] != packed_length(n):
        raise ValueError(
            f"packed width {packed.shape[1]} does not match n={n} "
            f"(want {packed_length(n)})"
        )
    return np.unpackbits(packed, axis=1, count=int(n))


class TargetBuffer:
    """Slots of target solutions written by the host, read by blocks.

    A version counter increments on every write, so devices can detect
    fresh targets without any lock: readers that race a write simply
    see either the old or the new generation — both are valid targets
    (exactly the paper's tolerance for asynchrony).
    """

    def __init__(self, n_slots: int, n: int) -> None:
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n_slots = int(n_slots)
        self.n = int(n)
        self._slots = np.zeros((n_slots, n), dtype=np.uint8)
        self.version = 0

    def write(self, targets: np.ndarray | Iterable[np.ndarray]) -> None:
        """Replace the slot contents; bumps the version counter.

        Accepts a ``n_slots × n`` matrix or an iterable of bit vectors
        (fewer than ``n_slots`` vectors wrap around to fill all slots).
        """
        if isinstance(targets, np.ndarray) and targets.ndim == 2:
            if targets.shape != (self.n_slots, self.n):
                raise ValueError(
                    f"targets must have shape ({self.n_slots}, {self.n}), "
                    f"got {targets.shape}"
                )
            self._slots[:] = targets
        else:
            vecs = [check_bit_vector(t, self.n, "target") for t in targets]
            if not vecs:
                raise ValueError("cannot write zero targets")
            for s in range(self.n_slots):
                self._slots[s] = vecs[s % len(vecs)]
        self.version += 1

    def read(self, slot: int) -> np.ndarray:
        """The target for block ``slot`` (blocks map to slots mod n_slots)."""
        return self._slots[slot % self.n_slots].copy()

    def read_all(self) -> np.ndarray:
        """A copy of all slots (one straight-search batch)."""
        return self._slots.copy()


@dataclass(frozen=True)
class StoredSolution:
    """One entry of the solution buffer."""

    energy: int
    x: np.ndarray


class SolutionBuffer:
    """Append buffer devices store results in; the host drains it.

    ``counter`` is the paper's global counter: the host polls it and
    drains only when it has advanced.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self._entries: list[StoredSolution] = []
        self.counter = 0

    def store(self, energy: int, x: np.ndarray) -> None:
        """Device side: append a found solution and bump the counter."""
        xb = check_bit_vector(x, self.n, "x")
        self._entries.append(StoredSolution(int(energy), xb.copy()))
        self.counter += 1

    def drain(self) -> list[StoredSolution]:
        """Host side: take all pending solutions (may be empty)."""
        taken = self._entries
        self._entries = []
        return taken

    def __len__(self) -> int:
        return len(self._entries)


class SharedWeights:
    """A weight matrix in shared memory, attachable from worker processes.

    Create in the parent with :meth:`create`, pass :attr:`descriptor`
    (name, shape, dtype strings — cheap to pickle) to children, and
    attach with :meth:`attach`.  The parent must call :meth:`unlink`
    when done; every attacher should call :meth:`close`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, array: np.ndarray, owner: bool) -> None:
        self._shm = shm
        self.array = array
        self._owner = owner

    @classmethod
    def create(cls, W: np.ndarray) -> "SharedWeights":
        """Copy ``W`` into a fresh shared-memory segment."""
        W = np.ascontiguousarray(W)
        shm = shared_memory.SharedMemory(create=True, size=W.nbytes)
        arr = np.ndarray(W.shape, dtype=W.dtype, buffer=shm.buf)
        arr[:] = W
        return cls(shm, arr, owner=True)

    @property
    def descriptor(self) -> tuple[str, tuple[int, ...], str]:
        """Picklable handle: ``(name, shape, dtype_str)``."""
        return (self._shm.name, tuple(self.array.shape), str(self.array.dtype))

    @classmethod
    def attach(cls, descriptor: tuple[str, tuple[int, ...], str]) -> "SharedWeights":
        """Attach to an existing segment from a worker process."""
        name, shape, dtype = descriptor
        shm = shared_memory.SharedMemory(name=name)
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        return cls(shm, arr, owner=False)

    def close(self) -> None:
        """Detach this process's mapping."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; also closes)."""
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked
                pass
