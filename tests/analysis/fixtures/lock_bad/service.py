"""Deliberate lock-discipline violations, one per check."""

import threading


class RacyService:
    GUARDED_BY = {"stats": "_lock", "ghost": "_lock"}  # ghost: never assigned

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._aux = threading.Lock()
        self._jobs = {}  # guarded-by: _lock
        self._queue = []  # guarded-by: _missing
        self.stats = {"hits": 0}

    def submit(self, job_id, job):
        self._jobs[job_id] = job  # unguarded write

    def snapshot(self):
        with self._lock:
            jobs = dict(self._jobs)  # fine
        jobs["hits"] = self.stats["hits"]  # unguarded read (GUARDED_BY)
        return jobs

    def wait_done(self):
        with self._cond:
            self._cond.wait(timeout=0.1)  # wait outside a predicate loop

    def notify_unheld(self):
        self._cond.notify_all()  # Condition op without holding the lock

    def order_a(self):
        with self._lock:
            with self._aux:
                return len(self._jobs)

    def order_b(self):
        with self._aux:
            with self._lock:  # opposite nesting: lock-order cycle
                return len(self._jobs)
