"""Unit tests for the shared-memory exchange layer (paper Figure 5).

The mailbox/ring primitives are exercised in-process (create + attach
within one interpreter is valid POSIX shm usage), so the seqlock,
epoch, and SPSC invariants are checked deterministically without
worker processes.  Full host↔worker integration runs in
``test_solver_process.py`` and ``test_transport_determinism.py``.
"""

import multiprocessing
import queue as queue_mod
import time

import numpy as np
import pytest

from repro.abs.buffers import pack_solutions, packed_length, unpack_solutions
from repro.abs.exchange import (
    DEFAULT_RING_SLOTS,
    EXCHANGE_NAMES,
    ResultBatch,
    ShmHostTransport,
    SolutionRing,
    TargetMailbox,
    make_host_transport,
    open_worker_endpoint,
    resolve_exchange,
)

pytestmark = pytest.mark.exchange_shm


def random_targets(B, n, seed=0):
    return np.random.default_rng(seed).integers(0, 2, (B, n), dtype=np.uint8)


class TestPacking:
    def test_round_trip(self):
        X = random_targets(7, 19)
        packed = pack_solutions(X)
        assert packed.shape == (7, packed_length(19))
        assert (unpack_solutions(packed, 19) == X).all()

    def test_packed_length(self):
        assert packed_length(8) == 1
        assert packed_length(9) == 2
        with pytest.raises(ValueError):
            packed_length(0)

    def test_pack_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            pack_solutions(np.zeros(8, dtype=np.uint8))


class TestResolveExchange:
    def test_default_is_shm(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXCHANGE", raising=False)
        assert resolve_exchange(None) == "shm"

    def test_env_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXCHANGE", "queue")
        assert resolve_exchange(None) == "queue"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXCHANGE", "queue")
        assert resolve_exchange("shm") == "shm"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown exchange"):
            resolve_exchange("carrier-pigeon")

    def test_names_catalog(self):
        assert EXCHANGE_NAMES == ("shm", "queue", "tcp")


class TestTargetMailbox:
    def test_publish_fetch_round_trip(self):
        box = TargetMailbox.create(4, 21)
        try:
            peer = TargetMailbox.attach(box.descriptor)
            try:
                assert peer.fetch(0, epoch=0) is None  # nothing published
                t = random_targets(4, 21)
                gen = box.publish(t, epoch=0)
                assert gen == 1
                got = peer.fetch(0, epoch=0)
                assert got is not None
                gen2, targets = got
                assert gen2 == 1
                assert (targets == t).all()
                # Same generation is not served twice.
                assert peer.fetch(gen2, epoch=0) is None
            finally:
                peer.close()
        finally:
            box.unlink()

    def test_only_freshest_generation_served(self):
        """Like the paper's target buffer: a slow worker skips straight
        to the newest batch instead of replaying stale ones."""
        box = TargetMailbox.create(2, 16)
        try:
            old = random_targets(2, 16, seed=1)
            new = random_targets(2, 16, seed=2)
            box.publish(old, epoch=0)
            box.publish(new, epoch=0)
            gen, targets = box.fetch(0, epoch=0)
            assert gen == 2
            assert (targets == new).all()
        finally:
            box.unlink()

    def test_epoch_filters_stale_targets(self):
        """A publish meant for incarnation 0 is invisible to the
        restarted incarnation 1 (rings survive, targets do not)."""
        box = TargetMailbox.create(2, 16)
        try:
            box.publish(random_targets(2, 16), epoch=0)
            assert box.fetch(0, epoch=1) is None
            box.publish(random_targets(2, 16, seed=3), epoch=1)
            got = box.fetch(0, epoch=1)
            assert got is not None and got[0] == 2
        finally:
            box.unlink()

    def test_shape_validated(self):
        box = TargetMailbox.create(2, 16)
        try:
            with pytest.raises(ValueError, match="shape"):
                box.publish(random_targets(3, 16), epoch=0)
        finally:
            box.unlink()

    def test_generation_slot_alternation(self):
        """Generation g lands in slot g % 2 — the current generation's
        payload is never overwritten by the next publish (the seqlock
        correctness argument)."""
        box = TargetMailbox.create(1, 8)
        try:
            a = random_targets(1, 8, seed=1)
            b = random_targets(1, 8, seed=2)
            box.publish(a, epoch=0)   # gen 1 → slot 1
            box.publish(b, epoch=0)   # gen 2 → slot 0
            assert (unpack_solutions(box._slots[1], 8) == a).all()
            assert (unpack_solutions(box._slots[0], 8) == b).all()
        finally:
            box.unlink()


class TestSolutionRing:
    def make_record(self, B, n, seed=0):
        rng = np.random.default_rng(seed)
        meta = np.arange(16, dtype=np.int64) * (seed + 1)
        energies = rng.integers(-100, 0, B).astype(np.int64)
        packed = pack_solutions(rng.integers(0, 2, (B, n), dtype=np.uint8))
        return meta, energies, packed

    def test_write_consume_fifo(self):
        ring = SolutionRing.create(3, 17, slots=4)
        try:
            peer = SolutionRing.attach(ring.descriptor)
            try:
                assert peer.consume() is None
                for seed in range(3):
                    ring.write(*self.make_record(3, 17, seed))
                assert peer.backlog() == 3
                for seed in range(3):
                    meta, energies, packed = peer.consume()
                    want = self.make_record(3, 17, seed)
                    assert (meta == want[0]).all()
                    assert (energies == want[1]).all()
                    assert (packed == want[2]).all()
                assert peer.consume() is None
            finally:
                peer.close()
        finally:
            ring.unlink()

    def test_full_ring_refuses_writes(self):
        ring = SolutionRing.create(2, 8, slots=2)
        try:
            ring.write(*self.make_record(2, 8, 0))
            ring.write(*self.make_record(2, 8, 1))
            assert ring.is_full()
            with pytest.raises(RuntimeError, match="ring full"):
                ring.write(*self.make_record(2, 8, 2))
            ring.consume()
            assert not ring.is_full()
            ring.write(*self.make_record(2, 8, 2))  # slot freed
        finally:
            ring.unlink()

    def test_wraparound_preserves_contents(self):
        ring = SolutionRing.create(1, 8, slots=2)
        try:
            for seed in range(7):
                ring.write(*self.make_record(1, 8, seed))
                meta, _, _ = ring.consume()
                assert (meta == self.make_record(1, 8, seed)[0]).all()
        finally:
            ring.unlink()

    def test_slots_validated(self):
        with pytest.raises(ValueError, match="slots"):
            SolutionRing.create(1, 8, slots=0)


#: EXCHANGE_NAMES with the tcp lane carrying its marker, so the
#: loopback guard in tests/conftest.py can skip it in sandboxes that
#: forbid socket binds.
TRANSPORT_PARAMS = [
    pytest.param(name, marks=pytest.mark.tcp) if name == "tcp"
    else pytest.param(name)
    for name in EXCHANGE_NAMES
]


class TestTransportEndToEnd:
    """Host transport + worker endpoint talking in one process."""

    @pytest.mark.parametrize("name", TRANSPORT_PARAMS)
    def test_round_trip(self, name):
        ctx = multiprocessing.get_context()
        stop = ctx.Event()
        transport = make_host_transport(name, ctx, n_workers=1, n_blocks=3, n=20)
        try:
            ch = transport.make_target_channel(0, 0)
            endpoint = open_worker_endpoint(
                transport.worker_ref(0, 0, ch), worker_id=0, incarnation=0,
                stop_evt=stop,
            )
            try:
                t = random_targets(3, 20, seed=5)
                ch.put(t)
                got = endpoint.fetch_targets(wait=True)
                assert (got == t).all()
                energies = np.array([-3, -1, -2], dtype=np.int64)
                xs = random_targets(3, 20, seed=6)
                counters = {"engine.flips": 11, "engine.evaluated": 44}
                assert endpoint.publish(energies, xs, 44, 11, counters, [])
                batch = transport.poll(timeout=5.0)
                assert isinstance(batch, ResultBatch)
                assert batch.worker_id == 0 and batch.incarnation == 0
                assert (batch.energies == energies).all()
                assert (batch.x == xs).all()
                assert batch.evaluated == 44 and batch.flips == 11
                assert batch.counters["engine.flips"] == 11
                assert transport.stats["exchange.targets_published"] == 1
                assert transport.stats["exchange.results_consumed"] == 1
                assert transport.stats["exchange.bytes_to_device"] > 0
                assert transport.stats["exchange.bytes_from_device"] > 0
            finally:
                endpoint.close()
        finally:
            transport.drain()
            transport.close()

    def test_poll_timeout_returns_none(self):
        ctx = multiprocessing.get_context()
        transport = make_host_transport("shm", ctx, n_workers=1, n_blocks=2, n=8)
        try:
            assert transport.poll(timeout=0.05) is None
        finally:
            transport.close()

    def test_event_side_channel(self):
        ctx = multiprocessing.get_context()
        stop = ctx.Event()
        transport = make_host_transport("shm", ctx, n_workers=1, n_blocks=2, n=8)
        try:
            ch = transport.make_target_channel(0, 0)
            endpoint = open_worker_endpoint(
                transport.worker_ref(0, 0, ch), worker_id=0, incarnation=0,
                stop_evt=stop,
            )
            try:
                events = [("device.round", {"round": 1})]
                endpoint.publish(
                    np.zeros(2, np.int64), np.zeros((2, 8), np.uint8),
                    1, 0, {}, events,
                )
                assert transport.poll(timeout=5.0) is not None
                # The side queue's feeder thread may trail the shm
                # ring by a moment; the solver tolerates that (bundles
                # ride a later poll), so the test waits bounded-time.
                deadline = time.monotonic() + 5.0
                bundles = transport.event_bundles()
                while not bundles and time.monotonic() < deadline:
                    time.sleep(0.005)
                    bundles = transport.event_bundles()
                assert bundles == [(0, 0, events)]
                assert transport.event_bundles() == []  # drained
            finally:
                endpoint.close()
        finally:
            transport.drain()
            transport.close()

    @pytest.mark.parametrize("name", TRANSPORT_PARAMS)
    def test_describe_shapes(self, name):
        ctx = multiprocessing.get_context()
        transport = make_host_transport(name, ctx, n_workers=2, n_blocks=4, n=33)
        try:
            d = transport.describe()
            assert d["transport"] == name
            assert d["workers"] == 2
            assert d["target_slot_bytes"] > 0
            assert d["result_slot_bytes"] > 0
            if name == "shm":
                assert d["ring_slots"] == DEFAULT_RING_SLOTS
                # Bit-packing: 33 bits fit in 5 bytes per block.
                assert d["target_slot_bytes"] == 4 * packed_length(33)
            if name == "tcp":
                assert d["port"] > 0  # the acceptor's ephemeral port
        finally:
            transport.close()

    def test_shm_close_unlinks_segments(self):
        import glob

        before = set(glob.glob("/dev/shm/*"))
        ctx = multiprocessing.get_context()
        transport = ShmHostTransport(ctx, n_workers=2, n_blocks=2, n=16)
        transport.close()
        after = set(glob.glob("/dev/shm/*"))
        assert after <= before

    def test_mailbox_channel_has_no_backlog_to_drain(self):
        ctx = multiprocessing.get_context()
        transport = make_host_transport("shm", ctx, n_workers=1, n_blocks=2, n=8)
        try:
            ch = transport.make_target_channel(0, 0)
            ch.put(random_targets(2, 8))
            with pytest.raises(queue_mod.Empty):
                ch.get_nowait()
        finally:
            transport.close()
