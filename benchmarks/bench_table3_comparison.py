"""Table 3 — cross-system comparison (§4.3).

The published rows (D-Wave 2000Q, two FPGA systems, the 8-GPU simulated
bifurcation machine) are quoted verbatim — exactly what the paper does,
since none of those systems were run by its authors either.  Our
reproduction adds:

- the ABS row as *modeled* (calibrated throughput model) and *measured*
  (NumPy engine) rates, and
- a same-budget solution-quality shoot-out between ABS and the
  classical single-walk baselines (SA, tabu, naive descent) implemented
  in this package — the comparison the paper's headline "search rate"
  metric implies but never shows directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FULL
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.gpusim import calibrated_model
from repro.metrics.search_rate import measure_engine_rate
from repro.paperdata import TABLE_3
from repro.problems.random_qubo import random_qubo
from repro.search import NaiveLocalSearch, SimulatedAnnealing, TabuSearch
from repro.utils.tables import Table

_N = 1024
_BUDGET_S = 8.0 if FULL else 2.0


def test_table3_comparison(benchmark, report):
    model = calibrated_model()
    systems = Table(
        ["system", "bits", "connection", "search rate", "technology"],
        title="Table 3 — system comparison (published rows quoted verbatim)",
    )
    for row in TABLE_3:
        rate = "N/A" if row.search_rate is None else f"{row.search_rate:.3g}/s"
        systems.add_row([row.system, row.bits, row.connection, rate, row.technology])
    modeled = model.search_rate(1024, 16, 4)
    measured = measure_engine_rate(random_qubo(_N, seed=_N), 32, steps=32)
    systems.add_row(
        ["ABS (model)", 32768, "fully-connected", f"{modeled:.3g}/s", "calibrated Turing model ×4"]
    )
    systems.add_row(
        [
            "ABS (this repro)", 32768, "fully-connected",
            f"{measured.rate:.3g}/s", "NumPy bulk engine, 1 CPU",
        ]
    )

    # Same-wall-clock quality comparison on one instance.
    qubo = random_qubo(_N, seed=_N)
    quality = Table(
        ["solver", "best energy", "evaluated", "rate (/s)"],
        title=f"Same-budget ({_BUDGET_S:.0f} s) solution quality, n={_N}",
    )
    abs_res = AdaptiveBulkSearch(
        qubo,
        AbsConfig(
            blocks_per_gpu=32, local_steps=64, pool_capacity=48,
            time_limit=_BUDGET_S, seed=0,
        ),
    ).solve("sync")
    quality.add_row(
        ["ABS (ours)", abs_res.best_energy, abs_res.evaluated, f"{abs_res.search_rate:.3g}"]
    )

    x0 = np.zeros(_N, dtype=np.uint8)
    baselines = [
        ("simulated annealing", SimulatedAnnealing(), 60_000),
        ("tabu search", TabuSearch(), 12_000),
        ("naive descent (Alg. 1)", NaiveLocalSearch(), 250),
    ]
    import time as _time

    results = {}
    rates = {}
    for name, solver, approx_steps in baselines:
        t0 = _time.perf_counter()
        steps = approx_steps
        rec = solver.run(qubo, x0, steps, seed=1)
        dt = _time.perf_counter() - t0
        # Rescale steps once so each baseline consumes ≈ the budget.
        if dt < _BUDGET_S / 2:
            steps = max(1, int(steps * _BUDGET_S / max(dt, 1e-6)))
            t0 = _time.perf_counter()
            rec = solver.run(qubo, x0, steps, seed=1)
            dt = _time.perf_counter() - t0
        results[name] = rec.best_energy
        rates[name] = rec.evaluated / dt
        quality.add_row(
            [name, rec.best_energy, rec.evaluated, f"{rec.evaluated / dt:.3g}"]
        )

    report(
        "Table 3 comparison",
        systems.render() + "\n\n" + quality.render()
        + "\n\nShape check: ABS evaluates orders of magnitude more solutions "
        "per second than any single-walk baseline at equal wall-clock, and "
        "its best energy is competitive with the strongest of them.",
    )

    # Who-wins assertions.  The paper's metric is the search rate: ABS
    # must dominate the one-solution-per-step walks (SA, naive) by a
    # wide margin.  (Tabu inherits the same n-neighbors-per-flip trick,
    # so its *rate* is comparable — the paper's edge over tabu-style
    # solvers is bulk parallelism, which one CPU core cannot express.)
    abs_eval_rate = abs_res.evaluated / abs_res.elapsed
    assert abs_eval_rate > 10 * rates["simulated annealing"]
    assert abs_eval_rate > 10 * rates["naive descent (Alg. 1)"]
    # Quality: ABS stays within 2.5 % of the best baseline.  (A lone
    # tabu walk — which shares ABS's O(1) bookkeeping — can edge it at
    # tiny wall-clock budgets on one loaded CPU core; on the paper's
    # hardware the three-orders-of-magnitude rate gap turns into a
    # quality gap.  The margin absorbs CI-box timing noise.)
    best_baseline = min(results.values())
    assert abs_res.best_energy <= best_baseline + 0.025 * abs(best_baseline)
    for name, e in results.items():
        if name != "tabu search":
            assert abs_res.best_energy <= e, f"{name} beat ABS at equal budget"

    benchmark(
        lambda: AdaptiveBulkSearch(
            qubo, AbsConfig(blocks_per_gpu=32, local_steps=64, max_rounds=1, seed=3)
        ).solve("sync")
    )
