"""MAX-2-SAT → QUBO (§5 "other applications").

A clause of at most two literals is unsatisfied exactly when both
literals are false; for literals with indicator ``v(x) = x`` (positive)
or ``1 − x`` (negated), the unsatisfied-count contribution is the
product ``(1 − v₁)(1 − v₂)`` — a quadratic polynomial with integer
coefficients.  Minimizing the QUBO therefore minimizes the number of
unsatisfied clauses; ``E(X)/scale + offset`` equals that count exactly
(``scale`` from :meth:`~repro.qubo.matrix.QuboMatrix.energy_scale`).

Clauses are tuples of nonzero ints in DIMACS convention: ``3`` means
variable 2 (0-indexed) positive, ``-1`` means variable 0 negated.
One-literal clauses are allowed; duplicates accumulate weight.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.qubo.matrix import QuboMatrix
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_bit_vector

Clause = tuple[int, ...]


def _check_clause(clause: Clause, n_vars: int) -> None:
    if not (1 <= len(clause) <= 2):
        raise ValueError(f"clauses must have 1 or 2 literals, got {clause!r}")
    for lit in clause:
        if lit == 0:
            raise ValueError("literal 0 is invalid (DIMACS convention)")
        if abs(lit) > n_vars:
            raise IndexError(f"literal {lit} exceeds variable count {n_vars}")


def max2sat_to_qubo(
    n_vars: int, clauses: Sequence[Clause]
) -> tuple[QuboMatrix, int]:
    """Compile clauses into ``(qubo, offset)``.

    ``E(X) / qubo.energy_scale() + offset`` equals the number of
    unsatisfied clauses for every assignment ``X``.
    """
    if n_vars < 1:
        raise ValueError(f"n_vars must be >= 1, got {n_vars}")
    if not clauses:
        raise ValueError("need at least one clause")
    linear: dict[int, int] = {}
    quadratic: dict[tuple[int, int], int] = {}
    constant = 0
    for clause in clauses:
        _check_clause(clause, n_vars)
        if len(clause) == 1:
            (lit,) = clause
            i = abs(lit) - 1
            if lit > 0:
                # unsat = 1 − x_i
                constant += 1
                linear[i] = linear.get(i, 0) - 1
            else:
                # unsat = x_i
                linear[i] = linear.get(i, 0) + 1
        else:
            l1, l2 = clause
            i, j = abs(l1) - 1, abs(l2) - 1
            s1, s2 = l1 > 0, l2 > 0
            if i == j:
                # (x ∨ x) or (x ∨ ¬x) degenerate forms.
                if s1 == s2:
                    if s1:
                        constant += 1
                        linear[i] = linear.get(i, 0) - 1
                    else:
                        linear[i] = linear.get(i, 0) + 1
                # (x ∨ ¬x) is a tautology: contributes nothing.
                continue
            # unsat = (1−v1)(1−v2) with v = x or 1−x:
            # expand u1·u2 where u = (1−x) for positive lit, x for negated.
            # u = a + b·x with (a,b) = (1,−1) positive / (0,1) negated.
            a1, b1 = (1, -1) if s1 else (0, 1)
            a2, b2 = (1, -1) if s2 else (0, 1)
            # u1·u2 = a1a2 + a2b1·x_i + a1b2·x_j + b1b2·x_i x_j
            constant += a1 * a2
            linear[i] = linear.get(i, 0) + a2 * b1
            linear[j] = linear.get(j, 0) + a1 * b2
            key = (min(i, j), max(i, j))
            quadratic[key] = quadratic.get(key, 0) + b1 * b2
    quadratic = {k: v for k, v in quadratic.items() if v != 0}
    linear = {k: v for k, v in linear.items() if v != 0}
    if not linear and not quadratic and constant == 0:
        # Only tautologies: every assignment satisfies everything.
        raise ValueError("all clauses are tautologies; nothing to optimize")
    qubo = QuboMatrix.from_terms(
        n_vars, linear, quadratic, name=f"max2sat-{n_vars}v{len(clauses)}c"
    )
    return qubo, constant


def count_unsatisfied(clauses: Sequence[Clause], x: np.ndarray) -> int:
    """Direct count of unsatisfied clauses under assignment ``x``."""
    xb = check_bit_vector(x)
    unsat = 0
    for clause in clauses:
        satisfied = False
        for lit in clause:
            v = bool(xb[abs(lit) - 1])
            if (lit > 0 and v) or (lit < 0 and not v):
                satisfied = True
                break
        unsat += not satisfied
    return unsat


def random_max2sat(
    n_vars: int, n_clauses: int, seed: SeedLike = None
) -> list[Clause]:
    """Uniform random 2-SAT clauses over distinct variables."""
    if n_vars < 2:
        raise ValueError(f"n_vars must be >= 2, got {n_vars}")
    if n_clauses < 1:
        raise ValueError(f"n_clauses must be >= 1, got {n_clauses}")
    rng = as_generator(seed)
    clauses: list[Clause] = []
    for _ in range(n_clauses):
        i, j = rng.choice(n_vars, size=2, replace=False) + 1
        signs = rng.integers(0, 2, size=2)
        clauses.append(
            (int(i) if signs[0] else -int(i), int(j) if signs[1] else -int(j))
        )
    return clauses
