"""Bit-selection policies for the forced-flip search (Algorithm 4).

Algorithm 4 *always* flips a bit; the policy decides which.  The paper's
policy (Figure 2) extracts a window of ``l`` consecutive bits starting
at a rotating offset and flips the one with minimum Δ:

- ``l == n``  → plain greedy (best neighbor always taken),
- ``l == 1``  → the offset bit is flipped unconditionally,
- in between → ``l`` acts like an (inverse) SA temperature, and — like
  parallel tempering — different searches can run different ``l``.

The windowed policy needs **no random numbers**, which is what makes the
GPU kernel cheap; a uniformly random policy is provided for ablations.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.qubo.state import SearchState


class SelectionPolicy(abc.ABC):
    """Chooses the next bit to flip given the current search state."""

    @abc.abstractmethod
    def select(self, state: SearchState, rng: np.random.Generator) -> int:
        """Return the index of the bit to flip."""

    def reset(self) -> None:
        """Reset internal position state (e.g. the window offset)."""

    def clone(self) -> "SelectionPolicy":
        """A fresh, reset copy (each search walk owns its own policy)."""
        import copy

        dup = copy.copy(self)
        dup.reset()
        return dup


class WindowMinDeltaPolicy(SelectionPolicy):
    """The paper's Figure-2 policy: min-Δ inside a rotating window.

    With offset ``a``, bits ``x_a … x_{a+l−1}`` (indices mod n) are
    extracted, the one with minimum Δ is flipped, and the offset
    advances to ``(a + l) mod n``.

    Parameters
    ----------
    window:
        Number of extracted bits ``l`` (1 ≤ l ≤ n at selection time).
    offset:
        Initial offset ``a`` (default 0).
    """

    def __init__(self, window: int, offset: int = 0) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self.window = int(window)
        self._offset0 = int(offset)
        self.offset = int(offset)

    def reset(self) -> None:
        self.offset = self._offset0

    def select(self, state: SearchState, rng: np.random.Generator) -> int:
        n = state.n
        l = min(self.window, n)
        a = self.offset % n
        idx = np.arange(a, a + l) % n  # window may wrap around
        k = int(idx[np.argmin(state.delta[idx])])
        self.offset = (a + l) % n
        return k

    def __repr__(self) -> str:
        return f"WindowMinDeltaPolicy(window={self.window}, offset={self.offset})"


class GreedyPolicy(SelectionPolicy):
    """Always flip the globally best (minimum-Δ) bit — the ``l = n`` limit."""

    def select(self, state: SearchState, rng: np.random.Generator) -> int:
        return int(np.argmin(state.delta))


class RandomPolicy(SelectionPolicy):
    """Flip a uniformly random bit — the high-temperature limit.

    Unlike the paper's ``l = 1`` window (which cycles deterministically),
    this consumes randomness; it exists for ablation comparisons.
    """

    def select(self, state: SearchState, rng: np.random.Generator) -> int:
        return int(rng.integers(state.n))
