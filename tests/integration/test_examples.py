"""Smoke tests: every shipped example must run to completion.

Each example is executed in a subprocess (its own interpreter, like a
user would run it) with a generous timeout.  Output sanity is checked
against one landmark string per script.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", "solution verified"),
    ("maxcut_gset.py", "best cut found"),
    ("number_partition.py", "difference"),
    ("graph_coloring.py", "proper colouring"),
    ("large_decomposition.py", "best cut"),
    ("tsp_tour.py", "length"),
    ("multi_gpu.py", "GPUs"),
    ("spin_glass.py", "satisfied bonds"),
]


@pytest.mark.parametrize("script,landmark", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, landmark):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    assert landmark in proc.stdout, proc.stdout


def test_every_example_is_covered():
    """No example script slips in without a smoke test."""
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {c[0] for c in CASES}
    assert shipped == tested, f"untested examples: {shipped - tested}"
