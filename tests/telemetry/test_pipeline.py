"""End-to-end telemetry: full-pipeline traces, counters, determinism.

The acceptance contract for the instrumentation layer: a sync-mode
solve with telemetry enabled produces a schema-valid JSONL trace
covering host rounds, device local-search batches, straight-search
retirements, GA pool operations, and window adaptation — and the
search result is bit-identical to the same seeded run with telemetry
disabled.
"""

import numpy as np
import pytest

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    TelemetryBus,
    validate_record,
    validate_trace,
)


@pytest.fixture
def problem():
    return QuboMatrix.random(48, seed=77)


@pytest.fixture
def config():
    return AbsConfig(
        blocks_per_gpu=8,
        local_steps=16,
        pool_capacity=24,
        max_rounds=10,
        adapt_windows=True,  # so the trace includes adapt.windows
        seed=42,
    )


class TestSyncTraceCoverage:
    def test_jsonl_trace_is_schema_valid_and_complete(self, problem, config, tmp_path):
        path = tmp_path / "solve.jsonl"
        with TelemetryBus([JsonlSink(path)]) as bus:
            AdaptiveBulkSearch(problem, config, telemetry=bus).solve("sync")
        counts = validate_trace(path)  # raises on any schema violation
        # Every pipeline stage must appear in the trace.
        assert counts["solve.start"] == 1
        assert counts["solve.end"] == 1
        assert counts["host.round"] == config.max_rounds
        assert counts["device.round"] == config.max_rounds
        assert counts["engine.straight"] == config.max_rounds
        assert counts["engine.local"] == config.max_rounds
        assert counts["host.absorb"] == config.max_rounds
        assert counts["host.targets"] == config.max_rounds - 1
        assert counts["adapt.windows"] >= 1

    def test_straight_retirements_recorded(self, problem, config):
        sink = MemorySink()
        bus = TelemetryBus([sink])
        AdaptiveBulkSearch(problem, config, telemetry=bus).solve("sync")
        retired = [e.fields["retired"] for e in sink.named("engine.straight")]
        # Every round walks blocks to fresh GA targets, so blocks retire.
        assert sum(retired) > 0
        assert all(0 <= r <= config.blocks_per_gpu for r in retired)
        for e in sink.named("device.round"):
            assert e.fields["retired"] >= 0

    def test_pool_operations_visible(self, problem, config):
        sink = MemorySink()
        bus = TelemetryBus([sink])
        AdaptiveBulkSearch(problem, config, telemetry=bus).solve("sync")
        absorbs = sink.named("host.absorb")
        assert all(
            e.fields["arrived"] == config.blocks_per_gpu for e in absorbs
        )
        # After the first round the pool has real energies → a spread.
        assert absorbs[-1].fields["pool_spread"] is not None
        targets = sink.named("host.targets")
        ops = targets[-1].fields
        assert ops["mutation"] + ops["crossover"] + ops["copy"] > 0

    def test_session_counters_accumulate_on_bus(self, problem, config):
        bus = TelemetryBus()
        AdaptiveBulkSearch(problem, config, telemetry=bus).solve("sync")
        snap = bus.counters.snapshot()
        assert snap["host.rounds"] == config.max_rounds
        assert snap["pool.inserted"] > 0
        assert snap["engine.local_flips"] > 0
        assert snap["engine.straight_retirements"] > 0


class TestTelemetryIsInert:
    def test_sync_results_bit_identical_on_vs_off(self, problem, config):
        """The regression pin: telemetry must never perturb the search."""
        off = AdaptiveBulkSearch(problem, config).solve("sync")
        bus = TelemetryBus([MemorySink()])
        on = AdaptiveBulkSearch(problem, config, telemetry=bus).solve("sync")
        assert on.best_energy == off.best_energy
        assert np.array_equal(on.best_x, off.best_x)
        assert on.evaluated == off.evaluated
        assert on.flips == off.flips
        assert on.rounds == off.rounds

    def test_counter_snapshots_identical_on_vs_off(self, problem, config):
        off = AdaptiveBulkSearch(problem, config).solve("sync")
        on = AdaptiveBulkSearch(problem, config, telemetry=TelemetryBus()).solve("sync")
        assert on.counters == off.counters


class TestResultCounters:
    def test_populated_without_telemetry(self, problem, config):
        res = AdaptiveBulkSearch(problem, config).solve("sync")
        c = res.counters
        assert c["engine.flips"] == res.flips
        assert c["engine.evaluated"] == res.evaluated
        assert c["engine.straight_flips"] + c["engine.local_flips"] == c["engine.flips"]
        assert c["host.solutions_absorbed"] == config.blocks_per_gpu * res.rounds
        assert c["ga.mutation"] + c["ga.crossover"] + c["ga.copy"] > 0
        assert c["adapt.reassignments"] > 0  # adapt_windows=True in config
        assert c["pool.inserted"] >= config.pool_capacity  # includes seeding

    def test_all_values_are_ints(self, problem, config):
        res = AdaptiveBulkSearch(problem, config).solve("sync")
        assert all(isinstance(v, int) for v in res.counters.values())


class TestProcessMode:
    def test_trace_covers_workers_and_queues(self, tmp_path):
        problem = QuboMatrix.random(16, seed=5)
        cfg = AbsConfig(
            n_gpus=2, blocks_per_gpu=4, max_rounds=6, time_limit=30.0, seed=9
        )
        path = tmp_path / "proc.jsonl"
        with TelemetryBus([JsonlSink(path)]) as bus:
            res = AdaptiveBulkSearch(problem, cfg, telemetry=bus).solve("process")
        counts = validate_trace(path)
        assert counts["solve.start"] == 1
        assert counts["solve.end"] == 1
        assert counts["worker.result"] >= 1
        assert counts["host.round"] >= 1
        assert counts.get("host.queue", 0) >= 1
        # Worker engine counters make it back into the run snapshot.
        assert res.counters["engine.flips"] == res.flips
        assert res.counters["engine.straight_retirements"] > 0


class TestScalarSearchInstrumentation:
    def test_bulk_local_search_emits_one_run_event(self, small_qubo):
        from repro.search import BulkLocalSearch, WindowMinDeltaPolicy

        sink = MemorySink()
        bus = TelemetryBus([sink])
        search = BulkLocalSearch(WindowMinDeltaPolicy(4), bus=bus)
        rec = search.run(
            small_qubo, np.zeros(small_qubo.n, dtype=np.uint8), steps=20, seed=3
        )
        runs = sink.named("search.run")
        assert len(runs) == 1
        assert runs[0].fields["flips"] == rec.flips
        assert runs[0].fields["evaluated"] == rec.evaluated
        assert runs[0].fields["best_energy"] == rec.best_energy
        for r in sink.records():
            validate_record(r)
