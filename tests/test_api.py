"""Tests for the one-call convenience API."""

import numpy as np
import pytest

from repro.api import IsingResult, solve, solve_ising
from repro.qubo import QuboMatrix, energy, qubo_to_ising
from repro.qubo.ising import bits_to_spins
from repro.search import solve_exact


class TestSolve:
    def test_reaches_optimum_with_target(self):
        q = QuboMatrix.random(14, seed=1)
        opt = solve_exact(q).energy
        res = solve(q, target_energy=opt, max_rounds=300, seed=2)
        assert res.best_energy == opt
        assert res.reached_target

    def test_default_budget_applied(self):
        q = QuboMatrix.random(32, seed=2)
        res = solve(q, max_rounds=5, seed=0)
        assert res.rounds == 5

    def test_accepts_plain_ndarray(self):
        W = QuboMatrix.random(16, seed=3).W
        res = solve(W, max_rounds=5, seed=0)
        assert res.best_energy == energy(W, res.best_x)

    def test_accepts_sparse(self):
        from repro.problems.maxcut import maxcut_to_sparse_qubo, random_graph

        g = random_graph(30, 90, seed=4)
        sq = maxcut_to_sparse_qubo(g)
        res = solve(sq, max_rounds=8, seed=1)
        assert res.best_energy == sq.energy(res.best_x)

    def test_adapt_flag_passes_through(self):
        q = QuboMatrix.random(32, seed=5)
        res = solve(q, max_rounds=10, adapt_windows=True, seed=1)
        assert res.best_energy == energy(q, res.best_x)

    def test_no_criterion_defaults_to_time_limit(self):
        q = QuboMatrix.random(16, seed=6)
        res = solve(q, seed=0)  # must not raise; 2 s default budget
        assert res.elapsed <= 10.0


class TestSolveIsing:
    def test_matches_qubo_solution(self):
        q = QuboMatrix.random(12, seed=7)
        model = qubo_to_ising(q)
        opt = solve_exact(q).energy
        res = solve_ising(model, target_energy=opt, max_rounds=300, seed=3)
        assert isinstance(res, IsingResult)
        assert res.hamiltonian == pytest.approx(opt)
        assert np.isin(res.spins, (-1, 1)).all()

    def test_hamiltonian_consistent_with_spins(self):
        q = QuboMatrix.random(10, seed=8)
        model = qubo_to_ising(q)
        res = solve_ising(model, max_rounds=20, seed=4)
        assert model.energy(res.spins) == pytest.approx(res.hamiltonian)

    def test_spins_map_back_to_bits(self):
        q = QuboMatrix.random(10, seed=9)
        model = qubo_to_ising(q)
        res = solve_ising(model, max_rounds=10, seed=5)
        assert np.array_equal(
            bits_to_spins(res.qubo_result.best_x), res.spins
        )
