"""Tests for the asynchrony-benefit simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.async_sim import (
    async_speedup,
    asynchronous_makespan,
    sample_round_work,
    synchronized_makespan,
)
from repro.qubo import QuboMatrix


class TestMakespans:
    def test_uniform_work_no_speedup(self):
        work = np.full((4, 5), 7.0)
        assert synchronized_makespan(work) == 35.0
        assert asynchronous_makespan(work) == 35.0
        assert async_speedup(work) == 1.0

    def test_heterogeneous_work_speedup(self):
        # One slow block per round, rotating — barriers always pay max.
        work = np.ones((4, 4))
        work[np.arange(4), np.arange(4)] = 10.0
        assert synchronized_makespan(work) == 40.0
        assert asynchronous_makespan(work) == 13.0
        assert async_speedup(work) == pytest.approx(40.0 / 13.0)

    def test_single_block_no_speedup(self):
        work = np.array([[3.0, 5.0, 2.0]])
        assert async_speedup(work) == 1.0

    def test_zero_work(self):
        assert async_speedup(np.zeros((3, 3))) == 1.0

    @given(
        st.integers(2, 6),
        st.integers(2, 6),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30)
    def test_speedup_at_least_one(self, b, r, seed):
        work = np.random.default_rng(seed).uniform(0.1, 10.0, size=(b, r))
        assert async_speedup(work) >= 1.0 - 1e-12
        # Sync makespan is an upper bound on any schedule of the same work.
        assert synchronized_makespan(work) >= asynchronous_makespan(work)

    def test_validation(self):
        with pytest.raises(ValueError):
            synchronized_makespan(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            asynchronous_makespan(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            synchronized_makespan(np.array([[-1.0]]))


class TestSampleRoundWork:
    def test_shape_and_bounds(self):
        q = QuboMatrix.random(48, seed=11)
        work = sample_round_work(q, 6, 5, local_steps=16, seed=0)
        assert work.shape == (6, 5)
        # Work = hamming + local_steps ∈ [local_steps, n + local_steps].
        assert (work >= 16).all()
        assert (work <= 48 + 16).all()

    def test_real_run_shows_heterogeneity(self):
        """GA targets land at varying Hamming distances, so real ABS
        rounds are heterogeneous — the paper's asynchrony argument."""
        q = QuboMatrix.random(64, seed=12)
        work = sample_round_work(q, 8, 8, local_steps=8, seed=1)
        assert async_speedup(work) > 1.0

    def test_deterministic(self):
        q = QuboMatrix.random(32, seed=13)
        a = sample_round_work(q, 4, 4, seed=5)
        b = sample_round_work(q, 4, 4, seed=5)
        assert np.array_equal(a, b)

    def test_validation(self):
        q = QuboMatrix.random(16, seed=0)
        with pytest.raises(ValueError):
            sample_round_work(q, 0, 3)
