"""Service-vs-one-shot bit-identity — the service's core contract.

A job run through :class:`SolverService` reuses processes, transports,
shared-memory segments, and backend-prepared weights across jobs, yet
none of that reuse may leak into the search: with the same (problem,
config, seed) the service must return *exactly* what a one-shot
``AdaptiveBulkSearch.solve("process")`` returns.  As in
``tests/abs/test_transport_determinism.py``, bit-identity is defined in
lockstep mode with a single worker.
"""

import pytest

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix, energy
from repro.service import ServiceConfig, SolverService
from repro.telemetry import MemorySink, TelemetryBus

pytestmark = [pytest.mark.service, pytest.mark.process, pytest.mark.timeout(180)]

#: shm and tcp, the two transports the ISSUE pins; queue rides along in
#: the cheap warm-reuse test below.
TRANSPORTS = ["shm", pytest.param("tcp", marks=pytest.mark.tcp)]


def fingerprint(res):
    return (res.best_energy, res.best_x.tobytes(), res.rounds, res.sweeps)


def lockstep_cfg(exchange, seed, **overrides):
    kwargs = dict(
        n_gpus=1,
        blocks_per_gpu=6,
        local_steps=8,
        pool_capacity=16,
        max_rounds=8,
        seed=seed,
        exchange=exchange,
        lockstep=True,
    )
    kwargs.update(overrides)
    return AbsConfig(**kwargs)


@pytest.fixture
def problem():
    return QuboMatrix.random(24, seed=321)


@pytest.mark.parametrize("exchange", TRANSPORTS)
class TestBitIdentity:
    def test_service_job_equals_one_shot(self, problem, exchange):
        cfg = lockstep_cfg(exchange, seed=42)
        one_shot = AdaptiveBulkSearch(problem, cfg).solve("process")
        with SolverService() as svc:
            served = svc.result(svc.submit(problem, cfg), timeout=120)
        assert fingerprint(served) == fingerprint(one_shot)
        assert served.best_energy == energy(problem, served.best_x)

    def test_warm_jobs_equal_their_one_shots(self, problem, exchange):
        """Three different jobs through ONE warm fleet, each pinned
        against its own cold one-shot — prepared-state reuse and epoch
        re-arming must not bleed state between jobs."""
        cfgs = [lockstep_cfg(exchange, seed=s) for s in (42, 7, 42)]
        cfgs[2] = lockstep_cfg(exchange, seed=42, max_rounds=5)  # distinct run key
        one_shots = [AdaptiveBulkSearch(problem, c).solve("process") for c in cfgs]
        sink = MemorySink()
        bus = TelemetryBus([sink])
        with SolverService(telemetry=bus) as svc:
            ids = [svc.submit(problem, c) for c in cfgs]
            served = [svc.result(j, timeout=120) for j in ids]
        for got, want in zip(served, one_shots):
            assert fingerprint(got) == fingerprint(want)
        counts = bus.counters.snapshot()
        # One fleet spawn serving three jobs is the whole point.
        assert counts["service.fleet_spawns"] == 1
        assert counts["service.fleet_rearms"] == 3
        assert counts["service.weights_cache_hits"] == 2

    def test_cache_hit_is_bit_identical(self, problem, exchange):
        cfg = lockstep_cfg(exchange, seed=42)
        with SolverService() as svc:
            first = svc.result(svc.submit(problem, cfg), timeout=120)
            repeat_id = svc.submit(problem, cfg)
            repeat = svc.result(repeat_id, timeout=120)
            assert svc.status(repeat_id)["cache_hit"]
        assert fingerprint(repeat) == fingerprint(first)
        assert repeat.counters == first.counters


class TestWarmReuseQueueTransport:
    def test_queue_transport_jobs_equal_one_shots(self, problem):
        """The queue transport's consume-and-discard hazard is what the
        arm_job ack gate exists for — pin it end to end."""
        cfgs = [lockstep_cfg("queue", seed=s) for s in (3, 4)]
        one_shots = [AdaptiveBulkSearch(problem, c).solve("process") for c in cfgs]
        with SolverService() as svc:
            served = [svc.result(svc.submit(problem, c), timeout=120) for c in cfgs]
        for got, want in zip(served, one_shots):
            assert fingerprint(got) == fingerprint(want)


class TestStampedTelemetry:
    def test_job_stamp_on_solver_events_and_no_search_change(self, problem):
        cfg = lockstep_cfg("shm", seed=42)
        quiet = AdaptiveBulkSearch(problem, cfg).solve("process")
        sink = MemorySink()
        with SolverService(telemetry=TelemetryBus([sink])) as svc:
            jid = svc.submit(problem, cfg)
            traced = svc.result(jid, timeout=120)
        assert fingerprint(traced) == fingerprint(quiet)
        rounds = sink.named("host.round")
        assert rounds and all(e.fields["job"] == jid for e in rounds)
        opens = sink.named("exchange.open")
        assert len(opens) == 1 and opens[0].fields["job"] == jid
