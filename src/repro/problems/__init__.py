"""Benchmark problem formulations and instance generators (paper §4.1).

- :mod:`.maxcut` — Max-Cut ↔ QUBO via Eq. (17), with the G-set graph
  families (random ±1 / random +1 / planar-like).
- :mod:`.gset` — the G-set file format plus a seeded synthetic catalog
  matching the sizes/families of the paper's Table 1(a) instances.
- :mod:`.tsp` — TSP → QUBO ((c−1)² bits, penalty = 2 · max distance),
  tour encoding/decoding, Held–Karp exact and 2-opt reference solvers.
- :mod:`.tsplib` — TSPLIB file parsing (EUC_2D / GEO / EXPLICIT) and the
  seeded synthetic analogues of the paper's Table 1(b) instances.
- :mod:`.random_qubo` — dense 16-bit synthetic random problems
  (Table 1(c)) with a seeded catalog.
- :mod:`.partition`, :mod:`.vertex_cover` — extra Lucas-style
  formulations for the "other applications" direction the paper's
  conclusion proposes.
"""

from repro.problems.coloring import (
    coloring_to_qubo,
    count_violations,
    decode_coloring,
    is_proper_coloring,
)
from repro.problems.gset import load_gset, save_gset, synthetic_gset, GSET_CATALOG
from repro.problems.maxsat import count_unsatisfied, max2sat_to_qubo, random_max2sat
from repro.problems.maxcut import (
    cut_value,
    energy_to_cut,
    maxcut_to_qubo,
    maxcut_to_sparse_qubo,
    random_graph,
    toroidal_graph,
)
from repro.problems.partition import decode_partition, partition_to_qubo
from repro.problems.random_qubo import RANDOM_CATALOG, catalog_instance, random_qubo
from repro.problems.spin_glass import edwards_anderson, sherrington_kirkpatrick
from repro.problems.tsp import (
    TSP_SCALE,
    TspQubo,
    decode_tour,
    held_karp,
    tour_length,
    tour_to_bits,
    tsp_to_qubo,
    two_opt,
)
from repro.problems.tsplib import (
    TSPLIB_CATALOG,
    TspInstance,
    load_tsplib,
    synthetic_instance,
)
from repro.problems.vertex_cover import decode_cover, is_vertex_cover, vertex_cover_to_qubo

__all__ = [
    "maxcut_to_qubo",
    "maxcut_to_sparse_qubo",
    "coloring_to_qubo",
    "decode_coloring",
    "is_proper_coloring",
    "count_violations",
    "max2sat_to_qubo",
    "count_unsatisfied",
    "random_max2sat",
    "cut_value",
    "energy_to_cut",
    "random_graph",
    "toroidal_graph",
    "load_gset",
    "save_gset",
    "synthetic_gset",
    "GSET_CATALOG",
    "TspQubo",
    "tsp_to_qubo",
    "decode_tour",
    "tour_to_bits",
    "tour_length",
    "held_karp",
    "two_opt",
    "TSP_SCALE",
    "TspInstance",
    "load_tsplib",
    "synthetic_instance",
    "TSPLIB_CATALOG",
    "random_qubo",
    "catalog_instance",
    "RANDOM_CATALOG",
    "partition_to_qubo",
    "decode_partition",
    "sherrington_kirkpatrick",
    "edwards_anderson",
    "vertex_cover_to_qubo",
    "decode_cover",
    "is_vertex_cover",
]
