"""Published numbers from the paper (Yasudo et al., ICPP 2020).

Every table the evaluation section reports is embedded here so that the
benchmark harnesses can print paper-vs-measured rows side by side, and
so the analytic throughput model (:mod:`repro.gpusim.timing`) can be
calibrated against Table 2.

Nothing in this module is used by the solver itself — it is reference
data only.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Table 1(a): Max-Cut from G-set — time-to-solution on 4 GPUs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MaxCutRow:
    """One Table 1(a) row."""

    graph: str
    n: int                 # bits == vertices
    family: str            # "random" or "planar"
    weighted: bool         # edge weights ±1 (True) or +1 (False)
    target_cut: int        # target cut value
    target_kind: str       # "best-known" / "99%" / "95%"
    time_s: float


TABLE_1A: tuple[MaxCutRow, ...] = (
    MaxCutRow("G1", 800, "random", False, 11624, "best-known", 0.0723),
    MaxCutRow("G6", 800, "random", True, 2178, "best-known", 0.106),
    MaxCutRow("G22", 2000, "random", False, 13225, "99%", 0.110),
    MaxCutRow("G27", 2000, "random", True, 3308, "99%", 0.721),
    MaxCutRow("G35", 2000, "planar", False, 7611, "99%", 0.208),
    MaxCutRow("G39", 2000, "planar", True, 2384, "99%", 1.89),
    MaxCutRow("G55", 5000, "random", False, 9785, "95%", 0.150),
    MaxCutRow("G70", 10000, "random", False, 9112, "95%", 0.360),
)


# ---------------------------------------------------------------------------
# Table 1(b): TSP from TSPLIB — time-to-solution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TspRow:
    """One Table 1(b) row."""

    problem: str
    cities: int
    n: int                 # bits == (cities − 1)²
    target_length: int     # tour-length target
    target_kind: str       # "best-known" / "+5%" / "+10%"
    time_s: float


TABLE_1B: tuple[TspRow, ...] = (
    TspRow("ulysses16", 16, 225, 6859, "best-known", 0.11),
    TspRow("bayg29", 29, 784, 1610, "best-known", 0.69),
    TspRow("dantzig42", 42, 1681, 734, "+5%", 1.25),
    TspRow("berlin52", 52, 2601, 7919, "+5%", 1.79),
    TspRow("st70", 70, 4621, 742, "+10%", 4.19),
)


# ---------------------------------------------------------------------------
# Table 1(c): synthetic random 16-bit problems — time-to-solution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RandomRow:
    """One Table 1(c) row."""

    n: int
    target_energy: int
    target_kind: str       # "best-known" / "99%"
    time_s: float


TABLE_1C: tuple[RandomRow, ...] = (
    RandomRow(1024, -182_208_337, "best-known", 0.0172),
    RandomRow(2048, -518_114_192, "best-known", 0.0413),
    RandomRow(4096, -1_466_369_859, "best-known", 1.04),
    RandomRow(16384, -11_631_426_556, "99%", 0.417),
    RandomRow(32768, -33_115_098_990, "99%", 1.79),
)


# ---------------------------------------------------------------------------
# Table 2: search rate (4 GPUs, 100 % occupancy)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThroughputRow:
    """One Table 2 row (as published).

    ``threads_published`` is the threads/block value printed in the
    paper.  For n = 2 k, p ∈ {8, 16, 32} the published values (128, 64,
    32) are internally inconsistent: n/p gives 256/128/64, and the
    published active-block counts (272/544/1088 = 68·1024/(n/p)) follow
    the n/p arithmetic.  Our occupancy calculator reproduces the
    consistent columns; the bench prints both.
    """

    n: int
    bits_per_thread: int
    threads_published: int
    active_blocks: int
    rate_tera: float       # ×10¹² solutions/second


TABLE_2: tuple[ThroughputRow, ...] = (
    ThroughputRow(1024, 1, 1024, 68, 0.221),
    ThroughputRow(1024, 2, 512, 136, 0.480),
    ThroughputRow(1024, 4, 256, 272, 0.924),
    ThroughputRow(1024, 8, 128, 544, 1.12),
    ThroughputRow(1024, 16, 64, 1088, 1.24),
    ThroughputRow(2048, 2, 1024, 68, 0.304),
    ThroughputRow(2048, 4, 512, 136, 0.564),
    ThroughputRow(2048, 8, 128, 272, 0.821),
    ThroughputRow(2048, 16, 64, 544, 1.01),
    ThroughputRow(2048, 32, 32, 1088, 0.807),
    ThroughputRow(4096, 4, 1024, 68, 0.407),
    ThroughputRow(4096, 8, 512, 136, 0.590),
    ThroughputRow(4096, 16, 256, 272, 0.732),
    ThroughputRow(4096, 32, 128, 544, 0.495),
    ThroughputRow(8192, 8, 1024, 68, 0.421),
    ThroughputRow(8192, 16, 512, 136, 0.537),
    ThroughputRow(8192, 32, 256, 272, 0.427),
    ThroughputRow(16384, 16, 1024, 68, 0.578),
    ThroughputRow(16384, 32, 512, 136, 0.513),
    ThroughputRow(32768, 32, 1024, 68, 0.439),
)

#: Figure 8 headline: the search rate scales linearly in GPU count.
FIG8_GPUS = (1, 2, 3, 4)

#: The number of GPUs behind every Table 2 rate.
TABLE_2_GPUS = 4

#: Headline comparison of §4.3: 1.24 T vs the 20.4 G FPGA of ref. [22].
FPGA_REF22_RATE = 20.4e9
ABS_PEAK_RATE = 1.24e12


# ---------------------------------------------------------------------------
# Table 3: cross-system comparison (published specs, quoted verbatim)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemRow:
    """One Table 3 column."""

    system: str
    bits: int
    connection: str
    search_rate: float | None  # solutions/s, None where the paper says N/A
    benchmark: str
    technology: str


TABLE_3: tuple[SystemRow, ...] = (
    SystemRow("D-Wave", 2048, "Chimera graph", None, "N/A", "D-Wave 2000Q"),
    SystemRow("Ref. [22]", 1024, "fully-connected", 20.4e9, "TSP", "Intel Arria 10 GX FPGA"),
    SystemRow("Ref. [29]", 4096, "fully-connected", None, "Random Max-Cut", "Intel Arria 10 GX1150 FPGA"),
    SystemRow("Ref. [13]", 100_000, "fully-connected", None, "Random Max-Cut", "NVIDIA Tesla V100-SXM2 GPU ×8"),
    SystemRow(
        "ABS (paper)",
        32_768,
        "fully-connected",
        1.24e12,
        "G-set Max-Cut, TSPLIB, 16-bit synthetic random",
        "NVIDIA GeForce RTX 2080 Ti GPU ×4",
    ),
)
