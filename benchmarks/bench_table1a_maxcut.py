"""Table 1(a) — Max-Cut time-to-solution on G-set (§4.2).

The real G-set files are not downloadable here, so each row runs on the
seeded synthetic analogue (same size / family / weight type; see
``repro.problems.gset``).  Because the analogue's best-known cut is not
published, the bench first *calibrates* a reference cut with a fixed
search budget, then measures time-to-solution to a fraction of it —
the same relative-target methodology the paper uses for its 99 %/95 %
rows.  Absolute times are not comparable (Python vs 4 × RTX 2080 Ti);
the shape to check is that easy instances (unweighted random) resolve
fastest and weighted instances take longer, as in the published table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.metrics.tts import time_to_solution
from repro.paperdata import TABLE_1A
from repro.problems import maxcut_to_qubo, synthetic_gset
from repro.utils.tables import Table

_QUICK_GRAPHS = ("G1", "G6", "G35")
_REPEATS = 10 if FULL else 3
_CALIBRATE_S = 10.0 if FULL else 2.5
_TTS_LIMIT_S = 60.0 if FULL else 8.0
#: Relative target per instance kind, mirroring the paper's fractions
#: but set slightly looser since the calibration budget is small.
_FRACTION = 0.97


def _solve_config(**kw) -> AbsConfig:
    base = dict(blocks_per_gpu=32, local_steps=64, pool_capacity=48)
    base.update(kw)
    return AbsConfig(**base)


def test_table1a_maxcut_tts(benchmark, report):
    rows = [r for r in TABLE_1A if FULL or r.graph in _QUICK_GRAPHS]
    table = Table(
        [
            "graph", "bits", "type", "weight", "paper target", "paper time (s)",
            "our target cut", "our mean TTS (s)", "success",
        ],
        title="Table 1(a) — Max-Cut TTS (synthetic G-set analogues, sync mode)",
    )
    our_times: dict[str, float] = {}
    for row in rows:
        graph = synthetic_gset(row.graph)
        qubo = maxcut_to_qubo(graph, name=row.graph)
        calib = AdaptiveBulkSearch(
            qubo, _solve_config(time_limit=_CALIBRATE_S, seed=1000)
        ).solve("sync")
        target_cut = int(_FRACTION * -calib.best_energy)
        tts = time_to_solution(
            qubo,
            -target_cut,
            _solve_config(time_limit=_TTS_LIMIT_S, seed=2000),
            repeats=_REPEATS,
        )
        our_times[row.graph] = tts.mean_time
        table.add_row(
            [
                row.graph,
                row.n,
                row.family,
                "±1" if row.weighted else "+1",
                f"{row.target_cut} ({row.target_kind})",
                row.time_s,
                f"{target_cut} ({_FRACTION:.0%} of calibrated)",
                tts.mean_time,
                f"{tts.successes}/{tts.repeats}",
            ]
        )
        assert tts.success_rate > 0, f"{row.graph}: never reached the relative target"

    note = (
        "Targets are fractions of a calibrated best (the analogue graphs "
        "have no published best-known value); paper times are 4×RTX 2080 Ti."
    )
    report("Table 1a maxcut", table.render() + "\n\n" + note)

    # Shape check mirrored from the paper: the ±1-weighted sibling of a
    # +1 instance is the harder one (G1 vs G6).
    if "G1" in our_times and "G6" in our_times:
        assert our_times["G6"] >= 0  # both measured; ordering is noisy at
        # this scale, so only assert measurability rather than strict order.

    qubo = maxcut_to_qubo(synthetic_gset("G1"))

    def _one_round():
        AdaptiveBulkSearch(
            qubo, _solve_config(max_rounds=1, seed=5)
        ).solve("sync")

    benchmark(_one_round)
