"""Ablation — sparse vs dense weight backend.

The paper stores ``W`` dense on the GPU (16-bit entries in 11 GB of
global memory), which caps it at 32 k bits.  Two of its benchmark
families are graphs with tiny average degree, so this reproduction adds
a CSR backend whose per-flip cost is O(degree) instead of O(n).  This
bench quantifies the trade on G-set-analogue Max-Cut instances:

- **memory**: CSR bytes vs the dense n² matrix;
- **flip rate**: measured engine throughput, sparse vs dense;
- **identical semantics**: both backends walk bit-for-bit identically
  (asserted, not just claimed).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FULL
from repro.gpusim import BulkSearchEngine
from repro.problems.gset import synthetic_gset
from repro.problems.maxcut import maxcut_to_qubo, maxcut_to_sparse_qubo
from repro.utils.tables import Table

_GRAPHS = ("G1", "G22", "G55", "G70") if FULL else ("G1", "G22")
_BLOCKS = 8
_STEPS = 150


def _flip_rate(weights, blocks=_BLOCKS, steps=_STEPS) -> float:
    import time

    eng = BulkSearchEngine(weights, blocks, windows=16)
    eng.local_steps(8)  # warm-up
    t0 = time.perf_counter()
    eng.local_steps(steps)
    dt = time.perf_counter() - t0
    return blocks * steps / dt


def test_ablation_sparse_backend(benchmark, report):
    table = Table(
        [
            "graph", "n", "avg degree", "dense MB", "sparse MB",
            "dense flips/s", "sparse flips/s", "speedup",
        ],
        title="Sparse vs dense backend on G-set analogues",
    )
    for name in _GRAPHS:
        g = synthetic_gset(name)
        n = g.number_of_nodes()
        sparse = maxcut_to_sparse_qubo(g, name=name)
        dense = maxcut_to_qubo(g, name=name)
        dense_mb = n * n * 8 / 1e6  # engine stores int64
        sparse_mb = sparse.nbytes / 1e6
        r_dense = _flip_rate(dense)
        r_sparse = _flip_rate(sparse)
        table.add_row(
            [
                name,
                n,
                f"{2 * g.number_of_edges() / n:.1f}",
                f"{dense_mb:.1f}",
                f"{sparse_mb:.2f}",
                f"{r_dense:.3g}",
                f"{r_sparse:.3g}",
                f"{r_sparse / r_dense:.1f}x",
            ]
        )
        # Semantics: identical trajectories.
        e_d = BulkSearchEngine(dense, 2, windows=8, offsets=np.zeros(2, dtype=np.int64))
        e_s = BulkSearchEngine(sparse, 2, windows=8, offsets=np.zeros(2, dtype=np.int64))
        e_d.local_steps(30)
        e_s.local_steps(30)
        assert np.array_equal(e_d.X, e_s.X)
        assert np.array_equal(e_d.best_energy, e_s.best_energy)
        # Memory wins everywhere; throughput wins once n is large enough
        # that the O(n) dense row gather dominates the (unavoidable)
        # O(n) full-neighbor best scan both backends share.
        assert sparse_mb < dense_mb / 8
        if n >= 2000:
            assert r_sparse > r_dense

    report(
        "Ablation sparse backend",
        table.render()
        + "\n\nCSR flips cost O(degree) instead of O(n), but both backends "
        "still pay the O(n) per-step full-neighbor best scan (Algorithm 4's "
        "inner check), so the throughput edge appears for n ≳ 2000 while "
        "the 10–100× memory saving holds at every size.",
    )

    sparse = maxcut_to_sparse_qubo(synthetic_gset("G1"))
    eng = BulkSearchEngine(sparse, _BLOCKS, windows=16)
    eng.local_steps(4)
    benchmark(eng.local_steps, 1)
