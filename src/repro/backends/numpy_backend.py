"""The NumPy reference backend — the semantics every backend is pinned to.

These kernels are the original :class:`BulkSearchEngine` implementations
extracted behind :class:`~repro.backends.base.KernelBackend`: fully
vectorized over blocks, one Python-level iteration per forced flip in
:meth:`run_local_steps` (inherited from the base class).  Always
available; the differential-equivalence suite treats it as ground truth
against the scalar Algorithm 4/5 references.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend, PreparedWeights

_INT64_MAX = np.iinfo(np.int64).max


class NumpyBackend(KernelBackend):
    """Vectorized reference kernels (the paper's Eq. 16 / Fig. 2 / Alg. 5)."""

    name = "numpy"

    # ------------------------------------------------------------------
    # Eq. (16) flip
    # ------------------------------------------------------------------
    def flip(
        self,
        pw: PreparedWeights,
        X: np.ndarray,
        delta: np.ndarray,
        energy: np.ndarray,
        ids: np.ndarray,
        ks: np.ndarray,
    ) -> int:
        if pw.is_sparse:
            return self._flip_sparse(pw, X, delta, energy, ids, ks)
        W = pw.dense
        m = len(ids)
        B = X.shape[0]
        rows = W[ks]  # (m, n) gather of W_k·
        if m == B:
            # Fast path: every block flips (the local-search steady
            # state) — update in place without fancy-index row copies.
            sk = 1 - 2 * X[ids, ks].astype(np.int64)
            signs = 1 - 2 * X.astype(np.int64)
            signs *= sk[:, None]
            dk_old = delta[ids, ks]  # fancy indexing → fresh copy
            signs *= rows
            signs += signs  # ×2 without an extra temporary
            delta += signs
            delta[ids, ks] = -dk_old
            energy += dk_old
            X[ids, ks] ^= 1
        else:
            xs = X[ids]
            sk = 1 - 2 * X[ids, ks].astype(np.int64)
            signs = (1 - 2 * xs.astype(np.int64)) * sk[:, None]
            dk_old = delta[ids, ks]  # fancy indexing → fresh copy
            delta[ids] += 2 * rows * signs
            delta[ids, ks] = -dk_old
            energy[ids] += dk_old
            X[ids, ks] ^= 1
        return m * pw.n

    def _flip_sparse(
        self,
        pw: PreparedWeights,
        X: np.ndarray,
        delta: np.ndarray,
        energy: np.ndarray,
        ids: np.ndarray,
        ks: np.ndarray,
    ) -> int:
        """Sparse flip kernel: scatter Eq. (16) over touched columns.

        For block ``ids[i]`` flipping bit ``ks[i]``, only the
        ``degree(ks[i])`` columns adjacent to the flipped bit change —
        O(Σ degree) total instead of O(m·n).
        """
        indptr, indices, data = pw.indptr, pw.indices, pw.data
        starts = indptr[ks]
        lens = indptr[ks + 1] - starts
        total = int(lens.sum())
        dk_old = delta[ids, ks]  # fancy indexing → fresh copy
        sk = 1 - 2 * X[ids, ks].astype(np.int64)
        if total:
            bidx = np.repeat(ids, lens)
            # Flat CSR positions: starts[i] .. starts[i]+lens[i] for each i.
            offs = np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
            flat = np.repeat(starts, lens) + offs
            cols = indices[flat]
            vals = data[flat]
            signs = (1 - 2 * X[bidx, cols].astype(np.int64)) * np.repeat(sk, lens)
            # (bidx, cols) pairs are unique (columns are unique within a
            # CSR row), so fancy-index += is well-defined here.
            delta[bidx, cols] += 2 * vals * signs
        delta[ids, ks] = -dk_old
        energy[ids] += dk_old
        X[ids, ks] ^= 1
        return total + len(ids)

    # ------------------------------------------------------------------
    # Selection kernels
    # ------------------------------------------------------------------
    def select_window(
        self,
        delta: np.ndarray,
        offsets: np.ndarray,
        windows: np.ndarray,
    ) -> np.ndarray:
        B, n = delta.shape
        ids = np.arange(B)
        l_max = int(windows.max())
        lane = np.arange(l_max, dtype=np.int64)
        idx = (offsets[:, None] + lane[None, :]) % n
        in_window = lane[None, :] < windows[:, None]
        vals = np.where(in_window, delta[ids[:, None], idx], _INT64_MAX)
        return idx[ids, vals.argmin(axis=1)]

    def select_straight(
        self,
        delta: np.ndarray,
        diff: np.ndarray,
        ids: np.ndarray,
    ) -> np.ndarray:
        masked = np.where(diff[ids].astype(bool), delta[ids], _INT64_MAX)
        return masked.argmin(axis=1)

    # ------------------------------------------------------------------
    # Incumbent tracking
    # ------------------------------------------------------------------
    def update_best(
        self,
        X: np.ndarray,
        delta: np.ndarray,
        energy: np.ndarray,
        best_energy: np.ndarray,
        best_x: np.ndarray,
        ids: np.ndarray,
    ) -> None:
        sub_delta = delta[ids]
        pos = sub_delta.argmin(axis=1)
        cand = energy[ids] + sub_delta[np.arange(len(ids)), pos]
        improved = cand < best_energy[ids]
        if improved.any():
            rid = ids[improved]
            best_energy[rid] = cand[improved]
            best_x[rid] = X[rid]
            best_x[rid, pos[improved]] ^= 1
        at_pos = energy[ids] < best_energy[ids]
        if at_pos.any():
            rid = ids[at_pos]
            best_energy[rid] = energy[rid]
            best_x[rid] = X[rid]

    def track_position(
        self,
        X: np.ndarray,
        energy: np.ndarray,
        best_energy: np.ndarray,
        best_x: np.ndarray,
        ids: np.ndarray,
    ) -> None:
        at_pos = energy[ids] < best_energy[ids]
        rid = ids[at_pos]
        best_energy[rid] = energy[rid]
        best_x[rid] = X[rid]
