"""Fixture: every way to break RNG discipline."""

import random

import numpy as np


def draw():
    np.random.seed(0)
    a = np.random.rand(4)
    b = random.random()
    rng = np.random.default_rng()
    return a, b, rng
