"""Golden values and invariances for the canonical run/problem digests.

The warm-fleet service caches results and prepared weights under these
digests, so their byte-level definition is a compatibility contract: a
silent change would make every persisted key stale *and* break the
"cached result is bit-for-bit the original run" guarantee across
versions.  The golden hex values below pin that contract.
"""

import dataclasses

import numpy as np
import pytest

from repro.qubo import QuboMatrix
from repro.qubo.io import problem_digest, run_digest
from repro.qubo.sparse import SparseQubo

W2 = np.array([[1, 2], [2, 3]], dtype=np.int64)

GOLDEN_DENSE = "0e1f21ef01cf0c13bc8d4a8f82381ef4c2cf07f976fafb7dd25861266e353315"
GOLDEN_SPARSE = "e35499219128c63c884043f4e7beeaee8fb63385edd6fba753904a90d51b4f86"
GOLDEN_RUN = "0df8cd859566e85537d67ccbc7b647031b61c3b0aef2a1a1f4b4fa9f36b38741"
GOLDEN_RUN_MODE = "2e9a75a1bfdea5762060873ad35fe42ac14b9cf217316e141457ce2353811499"
GOLDEN_RUN_SEED9 = "0c640403af68b0566180a0ab3e1f15bc0b51e62e32df375d928efcdd4d632d7b"


@dataclasses.dataclass
class _Cfg:
    """Frozen stand-in config so goldens survive AbsConfig growth."""

    max_rounds: int = 3
    seed: int | None = 5


class TestProblemDigest:
    def test_golden_dense(self):
        assert problem_digest(W2) == GOLDEN_DENSE

    def test_golden_sparse(self):
        assert problem_digest(SparseQubo.from_dense(W2)) == GOLDEN_SPARSE

    def test_name_and_wrapper_do_not_participate(self):
        assert problem_digest(QuboMatrix(W2, name="anything")) == GOLDEN_DENSE
        assert problem_digest(QuboMatrix(W2, name="other")) == GOLDEN_DENSE

    def test_value_sensitivity(self):
        other = W2.copy()
        other[0, 0] += 1
        assert problem_digest(other) != GOLDEN_DENSE

    def test_dtype_normalized(self):
        assert problem_digest(W2.astype(np.int32)) == GOLDEN_DENSE

    def test_storage_kind_is_part_of_the_key(self):
        # Dense and sparse builds of the same matrix prepare differently
        # (different backend paths), so they must not collide.
        assert GOLDEN_SPARSE != GOLDEN_DENSE


class TestRunDigest:
    def test_golden(self):
        assert run_digest(W2, _Cfg()) == GOLDEN_RUN

    def test_extra_changes_key(self):
        assert run_digest(W2, _Cfg(), extra={"mode": "process"}) == GOLDEN_RUN_MODE

    def test_seed_override(self):
        assert run_digest(W2, _Cfg(), seed=9) == GOLDEN_RUN_SEED9
        assert run_digest(W2, _Cfg(seed=9)) == GOLDEN_RUN_SEED9

    def test_equal_configs_digest_equal(self):
        assert run_digest(W2, _Cfg(max_rounds=3)) == run_digest(
            W2, _Cfg(max_rounds=3)
        )
        assert run_digest(W2, _Cfg(max_rounds=4)) != GOLDEN_RUN

    def test_absconfig_works(self):
        from repro.abs import AbsConfig

        a = run_digest(W2, AbsConfig(max_rounds=3, seed=5))
        b = run_digest(W2, AbsConfig(max_rounds=3, seed=5))
        c = run_digest(W2, AbsConfig(max_rounds=3, seed=6))
        assert a == b != c

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            run_digest(W2, {"max_rounds": 3})
