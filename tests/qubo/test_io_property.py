"""Property-based round-trip tests for instance I/O."""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qubo import QuboMatrix
from repro.qubo.io import load, save


@st.composite
def small_matrix(draw):
    n = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 2**31 - 1))
    lo = draw(st.integers(-100, 0))
    hi = draw(st.integers(1, 100))
    return QuboMatrix.random(n, seed=seed, low=lo, high=hi)


class TestRoundTripProperties:
    @given(small_matrix(), st.sampled_from([".qubo", ".json", ".npy"]))
    @settings(max_examples=30, deadline=None)
    def test_dense_roundtrip_every_format(self, matrix, ext):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / f"m{ext}"
            save(matrix, path)
            assert load(path) == matrix

    @given(small_matrix())
    @settings(max_examples=20, deadline=None)
    def test_npz_roundtrip_preserves_values(self, matrix):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "m.npz"
            save(matrix, path)
            assert load(path).to_dense() == matrix

    @given(small_matrix())
    @settings(max_examples=20, deadline=None)
    def test_coordinate_sparse_loader_agrees(self, matrix):
        from repro.qubo.io import load_qubo_sparse

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "m.qubo"
            save(matrix, path)
            assert load_qubo_sparse(path).to_dense() == matrix
