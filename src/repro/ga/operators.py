"""Genetic operators: mutation, uniform crossover, parent selection.

These follow §2.2.1 exactly: a mutation flips some random bits of one
selected solution; a crossover builds a child by picking each bit from
either of two parents uniformly at random.

Each operator comes in two shapes: the scalar form (one child per
call) and a ``*_batch`` form producing a whole ``(k, n)`` child matrix
from one vectorized RNG draw — the host hot path uses the batch forms
(one :class:`~repro.ga.host.TargetGenerator.generate` call feeds every
block of every device), the scalar forms remain the readable reference
the batch forms are tested against.  Scalar and batch forms draw from
the RNG in different orders, so they yield different (equally valid)
children for the same seed; structural equivalence is pinned by
``tests/ga/test_operators.py``.
"""

from __future__ import annotations

import numpy as np

from repro.ga.pool import SolutionPool
from repro.utils.validation import check_bit_vector


def default_mutation_flips(n: int) -> int:
    """Bits flipped per mutation when unspecified: ``max(1, n // 16)``."""
    return max(1, n // 16)


def mutate(x: np.ndarray, rng: np.random.Generator, flips: int | None = None) -> np.ndarray:
    """Return a copy of ``x`` with ``flips`` random distinct bits flipped.

    ``flips`` defaults to ``max(1, n // 16)`` — enough perturbation to
    leave the parent's attraction basin while staying nearby.
    """
    xb = check_bit_vector(x)
    n = xb.shape[0]
    if n == 0:
        return xb.copy()
    if flips is None:
        flips = default_mutation_flips(n)
    if not (1 <= flips <= n):
        raise ValueError(f"flips must be in [1, {n}], got {flips}")
    child = xb.copy()
    idx = rng.choice(n, size=flips, replace=False)
    child[idx] ^= 1
    return child


def mutate_batch(
    X: np.ndarray, rng: np.random.Generator, flips: int | None = None
) -> np.ndarray:
    """Batched :func:`mutate`: flip ``flips`` distinct bits per row.

    Distinct flip positions come from one ``(k, n)`` uniform draw
    ranked per row with ``argpartition`` — no Python-level loop.
    """
    X = np.asarray(X, dtype=np.uint8)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D (k, n), got shape {X.shape}")
    k, n = X.shape
    if k == 0 or n == 0:
        return X.copy()
    if flips is None:
        flips = default_mutation_flips(n)
    if not (1 <= flips <= n):
        raise ValueError(f"flips must be in [1, {n}], got {flips}")
    children = X.copy()
    # float32 scores halve the bytes argpartition has to move; ranks
    # stay distinct (argpartition returns distinct indices regardless
    # of ties) so every row still flips exactly ``flips`` bits.
    scores = rng.random((k, n), dtype=np.float32)
    idx = np.argpartition(scores, flips - 1, axis=1)[:, :flips]
    children[np.arange(k)[:, None], idx] ^= 1
    return children


def crossover_uniform(
    a: np.ndarray, b: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Uniform crossover: each child bit is drawn from either parent."""
    ab = check_bit_vector(a)
    bb = check_bit_vector(b, ab.shape[0], "b")
    take_b = rng.integers(0, 2, size=ab.shape[0], dtype=np.uint8).astype(bool)
    child = ab.copy()
    child[take_b] = bb[take_b]
    return child


def crossover_uniform_batch(
    A: np.ndarray, B: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Batched :func:`crossover_uniform` over row-aligned parents.

    The per-bit coin flips come from random *bytes* expanded with
    ``unpackbits`` (8 fair coins per drawn byte), and the blend is the
    branch-free ``A ^ ((A ^ B) & mask)`` — an order of magnitude
    cheaper than a boolean fancy-indexed assignment at hot-path sizes.
    """
    A = np.asarray(A, dtype=np.uint8)
    B = np.asarray(B, dtype=np.uint8)
    if A.shape != B.shape or A.ndim != 2:
        raise ValueError(
            f"parents must be 2-D with equal shapes, got {A.shape} and {B.shape}"
        )
    k, n = A.shape
    if k == 0 or n == 0:
        return A.copy()
    raw = rng.integers(0, 256, size=(k, (n + 7) // 8), dtype=np.uint8)
    take_b = np.unpackbits(raw, axis=1, count=n)
    return A ^ ((A ^ B) & take_b)


def select_parent(
    pool: SolutionPool, rng: np.random.Generator, *, elite_bias: float = 2.0
) -> np.ndarray:
    """Rank-biased parent selection from the (sorted) pool.

    Draws rank ``⌊m · u^elite_bias⌋`` with ``u ~ U[0,1)``: bias > 1
    favours low-energy entries, bias = 1 is uniform.  The paper does
    not pin down the selection rule; rank bias is the conventional
    choice for sorted populations and is exposed as a parameter.
    """
    if len(pool) == 0:
        raise IndexError("cannot select a parent from an empty pool")
    rank = int(select_parent_ranks(len(pool), rng.random(1), elite_bias)[0])
    return pool[rank].x


def select_parent_ranks(
    m: int, u: np.ndarray, elite_bias: float = 2.0
) -> np.ndarray:
    """Vectorized rank formula ``⌊m · u^elite_bias⌋`` (clamped to m−1).

    The single shared implementation of the selection rule: the scalar
    :func:`select_parent` and the batched generator both route through
    it, so they cannot drift apart.
    """
    if m < 1:
        raise IndexError("cannot select a parent from an empty pool")
    if elite_bias <= 0:
        raise ValueError(f"elite_bias must be positive, got {elite_bias}")
    u = np.asarray(u, dtype=np.float64)
    return np.minimum((m * u**elite_bias).astype(np.int64), m - 1)
