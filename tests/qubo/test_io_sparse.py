"""Tests for sparse instance I/O."""

import numpy as np
import pytest

from repro.qubo import QuboMatrix, SparseQubo
from repro.qubo.io import (
    QuboFormatError,
    load_qubo,
    load_qubo_sparse,
    load_sparse_npz,
    save_qubo,
    save_sparse_npz,
)


@pytest.fixture
def sparse_instance():
    rng = np.random.default_rng(7)
    W = rng.integers(-9, 10, size=(30, 30))
    W = np.triu(W) + np.triu(W, 1).T
    mask = rng.random((30, 30)) < 0.15
    mask = np.triu(mask) | np.triu(mask).T
    np.fill_diagonal(mask, True)
    return SparseQubo.from_dense(QuboMatrix((W * mask).astype(np.int64)))


class TestCoordinateSparse:
    def test_roundtrip_through_dense_writer(self, sparse_instance, tmp_path):
        """save_qubo(dense) → load_qubo_sparse yields the same problem."""
        p = tmp_path / "m.qubo"
        save_qubo(sparse_instance.to_dense(), p)
        loaded = load_qubo_sparse(p)
        assert loaded.to_dense() == sparse_instance.to_dense()

    def test_agrees_with_dense_loader(self, sparse_instance, tmp_path):
        p = tmp_path / "m.qubo"
        save_qubo(sparse_instance.to_dense(), p)
        dense = load_qubo(p)
        sparse = load_qubo_sparse(p)
        assert sparse.to_dense() == dense

    def test_name_preserved(self, sparse_instance, tmp_path):
        p = tmp_path / "m.qubo"
        save_qubo(sparse_instance.to_dense(), p)
        assert load_qubo_sparse(p).name == sparse_instance.name

    def test_missing_header(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("0 1 2\n")
        with pytest.raises(QuboFormatError, match="header"):
            load_qubo_sparse(p)

    def test_odd_coefficient_rejected(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("p qubo 0 2 0 1\n0 1 3\n")
        with pytest.raises(QuboFormatError, match="odd"):
            load_qubo_sparse(p)

    def test_out_of_range(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("p qubo 0 2 0 1\n0 9 2\n")
        with pytest.raises(QuboFormatError, match="range"):
            load_qubo_sparse(p)

    def test_diag_out_of_range(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("p qubo 0 2 1 0\n7 7 2\n")
        with pytest.raises(QuboFormatError, match="range"):
            load_qubo_sparse(p)


class TestNpz:
    def test_roundtrip(self, sparse_instance, tmp_path):
        p = tmp_path / "m.npz"
        save_sparse_npz(sparse_instance, p)
        loaded = load_sparse_npz(p)
        assert loaded.to_dense() == sparse_instance.to_dense()
        assert loaded.name == sparse_instance.name

    def test_wrong_archive_rejected(self, tmp_path):
        p = tmp_path / "other.npz"
        np.savez(p, whatever=np.zeros(3))
        with pytest.raises(QuboFormatError, match="repro-sparse-qubo"):
            load_sparse_npz(p)

    def test_dispatch_npz_sparse(self, sparse_instance, tmp_path):
        from repro.qubo.io import load, save

        p = tmp_path / "m.npz"
        save(sparse_instance, p)
        loaded = load(p)
        assert loaded.to_dense() == sparse_instance.to_dense()

    def test_dispatch_npz_converts_dense(self, tmp_path):
        from repro.qubo.io import load, save

        q = QuboMatrix.random(12, seed=3)
        p = tmp_path / "m.npz"
        save(q, p)
        assert load(p).to_dense() == q

    def test_dispatch_sparse_to_dense_formats(self, sparse_instance, tmp_path):
        from repro.qubo.io import load, save

        p = tmp_path / "m.qubo"
        save(sparse_instance, p)  # densified on the way out
        assert load(p) == sparse_instance.to_dense()

    def test_sparse_weight_bits(self, sparse_instance):
        dense = sparse_instance.to_dense()
        assert sparse_instance.weight_bits() == dense.weight_bits()
        assert sparse_instance.is_weight16() == dense.is_weight16()

    def test_compression_is_compact(self, tmp_path):
        """A 2000-node sparse instance stays far below dense size."""
        from repro.problems.gset import synthetic_gset
        from repro.problems.maxcut import maxcut_to_sparse_qubo

        sq = maxcut_to_sparse_qubo(synthetic_gset("G22"))
        p = tmp_path / "g22.npz"
        save_sparse_npz(sq, p)
        assert p.stat().st_size < 1_000_000  # dense int64 would be 32 MB
        assert load_sparse_npz(p).nnz == sq.nnz
