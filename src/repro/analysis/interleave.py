"""Deterministic interleaving explorer for the Figure-5 exchange buffers.

The shared-memory ``TargetMailbox`` (seqlock'd double buffer) and
``SolutionRing`` (SPSC ring) in :mod:`repro.abs.exchange` are the one
lock-free component this project owns, and their safety argument is a
store-ordering convention that unit tests can only sample.  This module
*explores* it: the real mailbox/ring objects are instantiated over a
process-local heap buffer, their ``publish``/``fetch``/``write``/
``consume`` bodies are re-expressed as step machines in which every
shared-memory access is one atomic step (payload stores and copies are
split into two halves so torn reads are representable), and a memoized
DFS walks the *entire* reachable state graph of one reader and one
writer — every distinct interleaving of every schedule up to ``depth``
high-level operations per actor.

Because both actors are deterministic, the state graph covers exactly
the set of observable behaviours; checking invariants at every step
therefore proves (within the explored bounds):

- **mailbox**: a successful ``fetch`` never returns a torn payload
  (both halves always belong to the same generation), generations are
  observed in strictly increasing order, and epoch filtering holds;
- **ring**: consumed records are exactly the FIFO prefix of what was
  written — no loss, no duplication, no tearing across the record's
  meta/energies/packed components, including across wraparound
  (``slots=2`` with more writes than slots forces it).

The tcp transport (:mod:`repro.abs.tcp`) gets the same treatment with
a different adversary: inside one TCP connection frames cannot tear or
reorder (the kernel guarantees ordered byte delivery and the codec's
CRC turns damage into reconnects), so the explored hazard is *loss of
the connection* — in-flight frames vanish, and the reconnect handshake
replays the host's freshest target frame.  The step machines model the
target stream (freshest-wins generation filter against HELLO replay)
and the result stream (at-most-once sends against drops), proving:

- **tcp targets**: accepted generations are strictly increasing with
  payloads intact across any pattern of drops and replays;
- **tcp results**: the host observes a strictly increasing subsequence
  of what the worker sent — suffix loss is allowed, duplication and
  reordering never.

Known, deliberate bugs can be injected (``bug=...``) to prove the
checker actually detects protocol violations; the test suite pins both
directions.  The tcp models take ``no_gen_filter`` / ``resend_stale``
(target stream) and ``dup_resend`` / ``reorder`` (result stream).
Scope and limits: ``docs/analysis.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.abs.exchange import (
    _H_EPOCH,
    _H_SEQ,
    SolutionRing,
    TargetMailbox,
)

__all__ = [
    "InterleaveReport",
    "InterleaveViolation",
    "explore_mailbox",
    "explore_ring",
    "explore_tcp_results",
    "explore_tcp_targets",
    "run_all",
]

#: Worker incarnation used throughout the explored scenarios.
_EPOCH = 1


class InterleaveViolation(AssertionError):
    """An invariant broke under some interleaving (carries the schedule)."""


class _HeapShm:
    """Duck-typed ``SharedMemory`` over process-local bytes.

    The exchange classes only need ``.buf``/``.name``/``.close``; a heap
    buffer lets the explorer snapshot and restore the entire region as
    ``bytes`` without the syscall cost (or name churn) of real POSIX
    segments.
    """

    def __init__(self, size: int) -> None:
        self._data = bytearray(size)
        self.buf = memoryview(self._data)
        self.name = f"heap-{size}"
        self.size = size

    @property
    def data(self) -> bytearray:
        return self._data

    def close(self) -> None:  # pragma: no cover - symmetry only
        pass

    def unlink(self) -> None:  # pragma: no cover - symmetry only
        pass


# --------------------------------------------------------------------------
# step-machine actors
# --------------------------------------------------------------------------

class _Actor:
    """One deterministic protocol participant, advanced one atomic step
    at a time.  All state lives in ``op``/``pc``/``locals``/``results``
    so the explorer can snapshot and restore it exactly."""

    name = "actor"

    def __init__(self, depth: int, bug: str | None = None) -> None:
        self.depth = depth
        self.bug = bug
        self.op = 0
        self.pc = 0
        self.locals: dict[str, int] = {}
        self.results: tuple = ()

    def snapshot(self) -> tuple:
        return (
            self.op,
            self.pc,
            tuple(sorted(self.locals.items())),
            self.results,
        )

    def restore(self, snap: tuple) -> None:
        self.op, self.pc, loc, self.results = snap
        self.locals = dict(loc)

    def done(self) -> bool:
        return self.op >= self.depth

    def _end_op(self, result) -> None:
        self.results = self.results + (result,)
        self.op += 1
        self.pc = 0

    def step(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


def _mailbox_payload(gen: int) -> tuple[int, int]:
    """The two deterministic payload bytes for generation ``gen``.

    The halves differ (and depend on ``gen``), so any mix of two
    generations — a torn read — fails the equality check."""
    return gen & 0xFF, (37 * gen + 11) & 0xFF


class _MailboxWriter(_Actor):
    """``TargetMailbox.publish`` with each shared access made atomic.

    Mirrors exchange.py lines: load generation; store both payload
    halves into slot ``gen % 2``; store epoch; store the sequence word
    last.  ``bug='seq_first'`` publishes the sequence word *before* the
    payload, the classic torn-write mistake the seqlock ordering exists
    to prevent."""

    name = "publish"

    def __init__(self, box: TargetMailbox, depth: int, bug: str | None = None) -> None:
        super().__init__(depth, bug)
        self.box = box

    def step(self) -> None:
        box, loc = self.box, self.locals
        seq_early = self.bug == "seq_first"
        if self.pc == 0:
            loc["gen"] = int(box._header[_H_SEQ]) + 1
            self.pc = 1
        elif self.pc == 1:
            gen = loc["gen"]
            if seq_early:
                box._header[_H_SEQ] = gen
            else:
                box._slots[gen % 2, 0, 0] = _mailbox_payload(gen)[0]
            self.pc = 2
        elif self.pc == 2:
            gen = loc["gen"]
            box._slots[gen % 2, 0, 0 if seq_early else 1] = _mailbox_payload(gen)[
                0 if seq_early else 1
            ]
            self.pc = 3
        elif self.pc == 3:
            gen = loc["gen"]
            if seq_early:
                box._slots[gen % 2, 0, 1] = _mailbox_payload(gen)[1]
                box._header[_H_EPOCH] = _EPOCH
                self._end_op(gen)
            else:
                box._header[_H_EPOCH] = _EPOCH
                self.pc = 4
        elif self.pc == 4:
            box._header[_H_SEQ] = loc["gen"]
            self._end_op(loc["gen"])


class _MailboxReader(_Actor):
    """``TargetMailbox.fetch`` as a step machine, retry loop included.

    ``bug='no_recheck'`` accepts the payload without re-checking the
    sequence word — the torn read then surfaces as a payload/generation
    mismatch, which is exactly what the checker must catch."""

    name = "fetch"

    def __init__(self, box: TargetMailbox, depth: int, bug: str | None = None) -> None:
        super().__init__(depth, bug)
        self.box = box
        self.locals = {"last_gen": 0}

    def step(self) -> None:
        box, loc = self.box, self.locals
        if self.pc == 0:
            gen = int(box._header[_H_SEQ])
            if gen <= loc["last_gen"] or gen == 0:
                self._end_op(None)  # nothing new published
                return
            loc["gen"] = gen
            self.pc = 1
        elif self.pc == 1:
            loc["pub_epoch"] = int(box._header[_H_EPOCH])
            self.pc = 2
        elif self.pc == 2:
            loc["b0"] = int(box._slots[loc["gen"] % 2, 0, 0])
            self.pc = 3
        elif self.pc == 3:
            loc["b1"] = int(box._slots[loc["gen"] % 2, 0, 1])
            self.pc = 4
        elif self.pc == 4:
            gen = loc.pop("gen")
            pub_epoch = loc.pop("pub_epoch")
            b0, b1 = loc.pop("b0"), loc.pop("b1")
            if self.bug != "no_recheck" and int(box._header[_H_SEQ]) != gen:
                self.pc = 0  # torn read detected by the protocol: retry
                return
            if pub_epoch != _EPOCH:
                self._end_op(None)
                return
            if (b0, b1) != _mailbox_payload(gen):
                raise InterleaveViolation(
                    f"torn mailbox read: generation {gen} returned payload "
                    f"({b0}, {b1}), expected {_mailbox_payload(gen)}"
                )
            if gen <= loc["last_gen"]:
                raise InterleaveViolation(
                    f"mailbox generation went backwards: {gen} after "
                    f"{loc['last_gen']}"
                )
            loc["last_gen"] = gen
            self._end_op(gen)


def _ring_energy(i: int) -> int:
    return -1000 - 7 * i


def _ring_packed(i: int) -> int:
    return (53 * i + 7) & 0xFF


class _RingProducer(_Actor):
    """``SolutionRing.write`` (plus the caller's ``is_full`` retry).

    Record ``i`` stores ``i`` into meta, ``_ring_energy(i)`` into
    energies and ``_ring_packed(i)`` into the packed payload — three
    separately-timed stores, so a record observed with mismatched
    components is a tear.  ``bug='early_head'`` advances ``head``
    before the payload is complete; ``bug='no_full_check'`` writes into
    a ring that is full, clobbering an unconsumed slot."""

    name = "write"

    def __init__(self, ring: SolutionRing, depth: int, bug: str | None = None) -> None:
        super().__init__(depth, bug)
        self.ring = ring

    def step(self) -> None:
        ring, loc = self.ring, self.locals
        early_head = self.bug == "early_head"
        if self.pc == 0:
            loc["head"] = int(ring._header[_H_SEQ])
            self.pc = 1
        elif self.pc == 1:
            # caller-side is_full() spin: re-reads tail until a slot frees
            tail = int(ring._header[_H_EPOCH])
            if loc["head"] - tail >= ring.slots and self.bug != "no_full_check":
                return  # still full; re-check on the next scheduling
            self.pc = 2
        elif self.pc == 2:
            head = loc["head"]
            if early_head:
                ring._header[_H_SEQ] = head + 1
            else:
                ring._meta[head % ring.slots, 0] = self.op + 1
            self.pc = 3
        elif self.pc == 3:
            head = loc["head"]
            if early_head:
                ring._meta[head % ring.slots, 0] = self.op + 1
            else:
                ring._energies[head % ring.slots, 0] = _ring_energy(self.op + 1)
            self.pc = 4
        elif self.pc == 4:
            head = loc["head"]
            if early_head:
                ring._energies[head % ring.slots, 0] = _ring_energy(self.op + 1)
            else:
                ring._packed[head % ring.slots, 0, 0] = _ring_packed(self.op + 1)
            self.pc = 5
        elif self.pc == 5:
            head = loc.pop("head")
            if early_head:
                ring._packed[head % ring.slots, 0, 0] = _ring_packed(self.op + 1)
            else:
                ring._header[_H_SEQ] = head + 1  # record complete → visible
            self._end_op(self.op + 1)


class _RingConsumer(_Actor):
    """``SolutionRing.consume`` as a step machine.

    Validates on every non-empty poll that the three record components
    agree (no tear) and that records arrive as the exact FIFO prefix
    ``1, 2, 3, …`` (no loss, no duplication — including wraparound)."""

    name = "consume"

    def __init__(self, ring: SolutionRing, depth: int, bug: str | None = None) -> None:
        super().__init__(depth, bug)
        self.ring = ring

    def step(self) -> None:
        ring, loc = self.ring, self.locals
        if self.pc == 0:
            loc["tail"] = int(ring._header[_H_EPOCH])
            self.pc = 1
        elif self.pc == 1:
            if int(ring._header[_H_SEQ]) == loc["tail"]:
                loc.pop("tail")
                self._end_op(None)  # empty poll
                return
            self.pc = 2
        elif self.pc == 2:
            loc["m"] = int(ring._meta[loc["tail"] % ring.slots, 0])
            self.pc = 3
        elif self.pc == 3:
            loc["e"] = int(ring._energies[loc["tail"] % ring.slots, 0])
            self.pc = 4
        elif self.pc == 4:
            loc["p"] = int(ring._packed[loc["tail"] % ring.slots, 0, 0])
            self.pc = 5
        elif self.pc == 5:
            tail = loc.pop("tail")
            m, e, p = loc.pop("m"), loc.pop("e"), loc.pop("p")
            ring._header[_H_EPOCH] = tail + 1  # release the slot
            consumed = sum(1 for r in self.results if r is not None)
            if (e, p) != (_ring_energy(m), _ring_packed(m)):
                raise InterleaveViolation(
                    f"torn ring record: meta says {m} but components are "
                    f"(energy={e}, packed={p}), expected "
                    f"({_ring_energy(m)}, {_ring_packed(m)})"
                )
            if m != consumed + 1:
                raise InterleaveViolation(
                    f"ring FIFO broken: consumed record {m} after "
                    f"{consumed} records (expected {consumed + 1})"
                )
            self._end_op(m)


# --------------------------------------------------------------------------
# tcp stream step machines (repro.abs.tcp)
# --------------------------------------------------------------------------
#
# The world is a tiny byte region modelling one TCP connection: a
# connected flag, a bounded FIFO of in-flight frames (TCP's in-order
# delivery *is* the FIFO; there is no interleaving that reorders it),
# and — for the target stream — the host's cached freshest frame that
# the HELLO handshake replays.  A dropper actor is the only adversary:
# it severs the connection, losing every in-flight frame at once.

#: Byte offsets into the stream region.
_S_CONN = 0      # 1 while the connection is up
_S_QLEN = 1      # frames currently in flight
_S_QUEUE = 2     # gens/seqs of in-flight frames, FIFO order
_S_QCAP = 3      # in-flight bound (socket buffer stand-in)
_S_PAYLOAD = _S_QUEUE + _S_QCAP    # targets only: per-frame payload byte
_S_LATEST_GEN = _S_PAYLOAD + _S_QCAP   # targets only: host's cached gen
_S_LATEST_PAY = _S_LATEST_GEN + 1      # targets only: its payload byte
_TARGET_REGION = _S_LATEST_PAY + 1
_RESULT_REGION = _S_QUEUE + _S_QCAP


def _tcp_payload(gen: int) -> int:
    """Deterministic payload byte for generation ``gen`` — a stamped
    frame whose payload disagrees with its generation is corrupt."""
    return (41 * gen + 3) & 0xFF


class _StreamDropper(_Actor):
    """The network adversary: sever the connection, losing every frame
    still in flight.  Reconnecting is the *peer's* job (and where the
    HELLO replay semantics live), so this actor only cuts."""

    name = "drop"

    def __init__(self, region: bytearray, depth: int) -> None:
        super().__init__(depth)
        self.region = region

    def step(self) -> None:
        r = self.region
        if r[_S_CONN] == 0:
            self._end_op(None)  # already down
            return
        r[_S_CONN] = 0
        for j in range(r[_S_QLEN]):  # in-flight frames are gone
            r[_S_QUEUE + j] = 0
            if len(r) == _TARGET_REGION:
                r[_S_PAYLOAD + j] = 0
        r[_S_QLEN] = 0
        self._end_op("drop")


class _TcpTargetSender(_Actor):
    """``TcpHostTransport._publish_targets``: stamp the next generation,
    cache it as the freshest frame, and send it if the stream is up —
    a send to a severed stream is simply lost (the worker will replay
    the cache when it reconnects)."""

    name = "send_targets"

    def __init__(self, region: bytearray, depth: int) -> None:
        super().__init__(depth)
        self.region = region

    def step(self) -> None:
        r = self.region
        if r[_S_CONN] and r[_S_QLEN] >= _S_QCAP:
            return  # stream backed up: spin until the worker drains
        gen = r[_S_LATEST_GEN] + 1
        r[_S_LATEST_GEN] = gen
        r[_S_LATEST_PAY] = _tcp_payload(gen)
        if r[_S_CONN]:
            r[_S_QUEUE + r[_S_QLEN]] = gen
            r[_S_PAYLOAD + r[_S_QLEN]] = _tcp_payload(gen)
            r[_S_QLEN] += 1
        self._end_op(gen)


class _TcpTargetReceiver(_Actor):
    """``TcpWorkerEndpoint`` receive loop: reconnect (triggering the
    host's HELLO replay of its freshest frame) or take the next frame,
    keeping a batch only when its generation is strictly newer than
    anything already used.

    ``bug='no_gen_filter'`` accepts replayed frames — the HELLO replay
    then hands the worker a generation it already searched.
    ``bug='resend_stale'`` models a host that stamps the replay with
    the current generation but serves the previously cached payload —
    the freshness filter passes and a corrupt batch gets through."""

    name = "recv_targets"

    def __init__(self, region: bytearray, depth: int, bug: str | None = None) -> None:
        super().__init__(depth, bug)
        self.region = region
        self.locals = {"last_gen": 0}

    def step(self) -> None:
        r, loc = self.region, self.locals
        if r[_S_CONN] == 0:
            # Reconnect + HELLO: the host replays its freshest cached
            # frame so the rejoining worker is current immediately.
            r[_S_CONN] = 1
            lg = r[_S_LATEST_GEN]
            if lg and r[_S_QLEN] < _S_QCAP:
                pay = (
                    _tcp_payload(lg - 1)
                    if self.bug == "resend_stale"
                    else r[_S_LATEST_PAY]
                )
                r[_S_QUEUE + r[_S_QLEN]] = lg
                r[_S_PAYLOAD + r[_S_QLEN]] = pay
                r[_S_QLEN] += 1
            self._end_op("reconnect")
            return
        if r[_S_QLEN] == 0:
            self._end_op(None)  # empty poll
            return
        gen, payload = r[_S_QUEUE], r[_S_PAYLOAD]
        for j in range(1, r[_S_QLEN]):  # in-order delivery: pop the head
            r[_S_QUEUE + j - 1] = r[_S_QUEUE + j]
            r[_S_PAYLOAD + j - 1] = r[_S_PAYLOAD + j]
        r[_S_QLEN] -= 1
        r[_S_QUEUE + r[_S_QLEN]] = 0
        r[_S_PAYLOAD + r[_S_QLEN]] = 0
        if self.bug != "no_gen_filter" and gen <= loc["last_gen"]:
            self._end_op(None)  # replayed or stale: skipped, never reused
            return
        if payload != _tcp_payload(gen):
            raise InterleaveViolation(
                f"corrupt tcp target frame: generation {gen} carried "
                f"payload {payload}, expected {_tcp_payload(gen)}"
            )
        if gen <= loc["last_gen"]:
            raise InterleaveViolation(
                f"tcp target freshness broken: generation {gen} accepted "
                f"after {loc['last_gen']} (replayed frame reused)"
            )
        loc["last_gen"] = gen
        self._end_op(gen)


class _TcpResultSender(_Actor):
    """``TcpWorkerEndpoint.publish``: reconnect if the stream is down,
    then send this round's result *at most once* — a send that dies
    mid-flight is dropped for good, because the totals are cumulative
    and the next round's snapshot covers the gap.

    ``bug='dup_resend'`` retries the last frame on reconnect (the
    tempting at-least-once mistake) — the host then sees a result it
    already consumed."""

    name = "send_result"

    def __init__(self, region: bytearray, depth: int, bug: str | None = None) -> None:
        super().__init__(depth, bug)
        self.region = region
        self.locals = {"last_sent": 0}

    def step(self) -> None:
        r, loc = self.region, self.locals
        if self.pc == 0:
            if r[_S_CONN] == 0:
                r[_S_CONN] = 1  # reconnect + HELLO
                if self.bug == "dup_resend" and loc["last_sent"]:
                    if r[_S_QLEN] < _S_QCAP:
                        r[_S_QUEUE + r[_S_QLEN]] = loc["last_sent"]
                        r[_S_QLEN] += 1
            self.pc = 1
            return
        if r[_S_CONN] and r[_S_QLEN] >= _S_QCAP:
            return  # stream backed up: spin until the host drains
        seq = self.op + 1
        if r[_S_CONN]:
            r[_S_QUEUE + r[_S_QLEN]] = seq
            r[_S_QLEN] += 1
        # else: the connection died under the send — at-most-once means
        # this snapshot is lost for good, never retried.
        loc["last_sent"] = seq
        self._end_op(seq)


class _TcpResultReceiver(_Actor):
    """Host-side result intake: take the next in-flight frame and check
    that observed sequence numbers are strictly increasing — the FIFO /
    no-duplication half of the SolutionRing contract, with suffix loss
    (a severed stream) explicitly allowed.

    ``bug='reorder'`` delivers a later frame first — the reordering TCP
    itself can never produce, proving the checker would notice if the
    in-order assumption were violated."""

    name = "recv_result"

    def __init__(self, region: bytearray, depth: int, bug: str | None = None) -> None:
        super().__init__(depth, bug)
        self.region = region
        self.locals = {"last_seq": 0}

    def step(self) -> None:
        r, loc = self.region, self.locals
        if r[_S_QLEN] == 0:
            self._end_op(None)  # empty poll
            return
        idx = 1 if (self.bug == "reorder" and r[_S_QLEN] >= 2) else 0
        seq = r[_S_QUEUE + idx]
        for j in range(idx + 1, r[_S_QLEN]):
            r[_S_QUEUE + j - 1] = r[_S_QUEUE + j]
        r[_S_QLEN] -= 1
        r[_S_QUEUE + r[_S_QLEN]] = 0
        if seq <= loc["last_seq"]:
            raise InterleaveViolation(
                f"tcp result FIFO broken: sequence {seq} observed after "
                f"{loc['last_seq']} (duplicated or reordered frame)"
            )
        loc["last_seq"] = seq
        self._end_op(seq)


# --------------------------------------------------------------------------
# the explorer
# --------------------------------------------------------------------------

@dataclass
class InterleaveReport:
    """Outcome of exhaustively exploring one structure's state graph."""

    structure: str
    depth: int
    states: int
    transitions: int
    terminals: int
    violations: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"{self.structure}: depth={self.depth} states={self.states} "
            f"transitions={self.transitions} terminals={self.terminals} "
            f"[{status}] {self.elapsed:.2f}s"
        )


def _explore(
    structure: str,
    depth: int,
    region: bytearray,
    actors: list[_Actor],
    max_violations: int = 3,
) -> InterleaveReport:
    """Memoized DFS over the product state graph of ``actors``.

    A state is ``(region bytes, actor snapshots)``; every enabled actor
    is stepped from every reachable state, so all interleavings of all
    schedules are covered.  Self-loop transitions (an actor spinning on
    an unchanged condition) collapse into already-visited states, which
    is what makes the retry loops finite to explore."""
    start = time.perf_counter()
    view = memoryview(region)
    initial = (bytes(region), tuple(a.snapshot() for a in actors))
    visited = {initial}
    parents: dict[tuple, tuple[tuple, str] | None] = {initial: None}
    stack = [initial]
    violations: list[str] = []
    transitions = 0
    terminals = 0

    def schedule_of(state: tuple) -> str:
        names: list[str] = []
        cursor: tuple | None = state
        while cursor is not None and parents[cursor] is not None:
            parent, actor_name = parents[cursor]  # type: ignore[misc]
            names.append(actor_name)
            cursor = parent
        names.reverse()
        text = " ".join(names)
        return text if len(text) <= 400 else "… " + text[-400:]

    while stack:
        state = stack.pop()
        mem_bytes, snaps = state
        for actor, snap in zip(actors, snaps):
            actor.restore(snap)
        if all(a.done() for a in actors):
            terminals += 1
            continue
        for idx, actor in enumerate(actors):
            view[:] = mem_bytes
            for other, snap in zip(actors, snaps):
                other.restore(snap)
            if actor.done():
                continue
            try:
                actor.step()
            except InterleaveViolation as exc:
                if len(violations) < max_violations:
                    violations.append(
                        f"{exc} (schedule: {schedule_of(state)} {actor.name})"
                    )
                continue
            transitions += 1
            new_state = (bytes(region), tuple(a.snapshot() for a in actors))
            if new_state not in visited:
                visited.add(new_state)
                parents[new_state] = (state, actor.name)
                stack.append(new_state)

    return InterleaveReport(
        structure=structure,
        depth=depth,
        states=len(visited),
        transitions=transitions,
        terminals=terminals,
        violations=violations,
        elapsed=time.perf_counter() - start,
    )


def make_mailbox(n_blocks: int = 1, n: int = 16) -> TargetMailbox:
    """A real ``TargetMailbox`` over heap memory (two payload bytes)."""
    shm = _HeapShm(TargetMailbox._size(n_blocks, n))
    box = TargetMailbox(shm, n_blocks, n, owner=True)  # type: ignore[arg-type]
    box._header[:] = 0
    return box


def make_ring(n_blocks: int = 1, n: int = 8, slots: int = 2) -> SolutionRing:
    """A real ``SolutionRing`` over heap memory (one-byte payload)."""
    shm = _HeapShm(SolutionRing._size(n_blocks, n, slots))
    ring = SolutionRing(shm, n_blocks, n, slots, owner=True)  # type: ignore[arg-type]
    ring._header[:] = 0
    return ring


def explore_mailbox(depth: int = 6, bug: str | None = None) -> InterleaveReport:
    """Exhaustively interleave ``depth`` publishes against ``depth`` fetches."""
    box = make_mailbox()
    actors: list[_Actor] = [
        _MailboxWriter(box, depth, bug=bug if bug == "seq_first" else None),
        _MailboxReader(box, depth, bug=bug if bug == "no_recheck" else None),
    ]
    return _explore(f"TargetMailbox(bug={bug})" if bug else "TargetMailbox",
                    depth, box._shm.data, actors)  # type: ignore[attr-defined]


def explore_ring(
    depth: int = 6, slots: int = 2, bug: str | None = None
) -> InterleaveReport:
    """Exhaustively interleave ``depth`` writes against ``depth`` consumes.

    ``slots=2`` with ``depth > 2`` forces wraparound and full-ring
    back-pressure into the explored graph."""
    ring = make_ring(slots=slots)
    actors: list[_Actor] = [
        _RingProducer(ring, depth,
                      bug=bug if bug in ("early_head", "no_full_check") else None),
        _RingConsumer(ring, depth),
    ]
    return _explore(f"SolutionRing(bug={bug})" if bug else "SolutionRing",
                    depth, ring._shm.data, actors)  # type: ignore[attr-defined]


def explore_tcp_targets(
    depth: int = 6, drops: int = 2, bug: str | None = None
) -> InterleaveReport:
    """Exhaustively interleave ``depth`` target sends against ``depth``
    worker receive/reconnect steps, under up to ``drops`` connection
    losses (each loss discards every in-flight frame and forces the
    HELLO replay on reconnect)."""
    region = bytearray(_TARGET_REGION)
    region[_S_CONN] = 1
    actors: list[_Actor] = [
        _TcpTargetSender(region, depth),
        _TcpTargetReceiver(
            region, depth,
            bug=bug if bug in ("no_gen_filter", "resend_stale") else None,
        ),
        _StreamDropper(region, drops),
    ]
    return _explore(f"TcpTargetStream(bug={bug})" if bug else "TcpTargetStream",
                    depth, region, actors)


def explore_tcp_results(
    depth: int = 6, drops: int = 2, bug: str | None = None
) -> InterleaveReport:
    """Exhaustively interleave ``depth`` at-most-once result sends
    against ``depth`` host consumes, under up to ``drops`` connection
    losses — proving the host's view is a strictly increasing
    subsequence (suffix loss allowed; duplication and reorder never)."""
    region = bytearray(_RESULT_REGION)
    region[_S_CONN] = 1
    actors: list[_Actor] = [
        _TcpResultSender(
            region, depth, bug=bug if bug == "dup_resend" else None
        ),
        _TcpResultReceiver(
            region, depth, bug=bug if bug == "reorder" else None
        ),
        _StreamDropper(region, drops),
    ]
    return _explore(f"TcpResultStream(bug={bug})" if bug else "TcpResultStream",
                    depth, region, actors)


def run_all(depth: int = 6) -> list[InterleaveReport]:
    """All four structures at ``depth`` (`repro analyze --interleave`)."""
    return [
        explore_mailbox(depth=depth),
        explore_ring(depth=depth),
        explore_tcp_targets(depth=depth),
        explore_tcp_results(depth=depth),
    ]
