"""Empirical search-efficiency measurement (Lemmas 1–3, Theorem 1).

Runs each algorithm of the §2 ladder with instrumented operation
counters and reports measured operations-per-evaluated-solution, making
the paper's asymptotic claims checkable as data:

====================  ======================
Algorithm             Expected efficiency
====================  ======================
Algorithm 1           Θ(n²)
Algorithm 2           Θ(n + n²/m)
Algorithm 3           Θ(n)
Algorithm 4           Θ(1)
====================  ======================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.qubo.matrix import WeightsLike, as_weight_matrix
from repro.search.base import LocalSearch
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class EfficiencyPoint:
    """Measured efficiency of one (algorithm, n) pair."""

    algorithm: str
    n: int
    steps: int
    evaluated: int
    ops: int

    @property
    def efficiency(self) -> float:
        """Operations per evaluated solution."""
        return self.ops / self.evaluated if self.evaluated else float("nan")


def measure_efficiency(
    algorithms: Sequence[LocalSearch],
    weights_by_n: dict[int, WeightsLike],
    *,
    steps: int = 256,
    seed: SeedLike = 0,
) -> list[EfficiencyPoint]:
    """Run each algorithm on each instance; return efficiency points.

    Every algorithm starts from the same random bit vector per size, so
    the comparison isolates the bookkeeping strategy.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = as_generator(seed)
    points: list[EfficiencyPoint] = []
    for n, weights in sorted(weights_by_n.items()):
        W = as_weight_matrix(weights)
        if W.shape[0] != n:
            raise ValueError(f"weights for key {n} have size {W.shape[0]}")
        x0 = rng.integers(0, 2, size=n, dtype=np.uint8)
        for algo in algorithms:
            rec = algo.run(W, x0, steps, seed=rng.integers(2**31))
            points.append(
                EfficiencyPoint(
                    algorithm=algo.name,
                    n=n,
                    steps=steps,
                    evaluated=rec.evaluated,
                    ops=rec.ops,
                )
            )
    return points
