"""Bit-plane backend: packing helpers, tiers, fallback, exactness.

The registry-wide differential suite (``test_equivalence.py``) already
pins ``bitplane`` step-for-step against the scalar references via the
``available_backends()`` parametrization; this module covers what that
sweep cannot: the packed-plane helper algebra, the ``REPRO_NO_CC``
fallback lane (mirroring the numba gating contract exactly), dtype-tier
selection including the forced int64 tier, and explicit single-step
lockstep runs of both dense tiers and the sparse CSR kernel.
"""

import warnings

import numpy as np
import pytest

import repro.backends.bitplane as bp_mod
from repro.backends import NumpyBackend, resolve_backend
from repro.backends.bitplane import (
    BitplaneBackend,
    cc_available,
    hamming_distances,
    make_bitplane_backend,
    pack_rows,
    unpack_rows,
)
from repro.gpusim import BulkSearchEngine
from repro.qubo import QuboMatrix, SparseQubo
from repro.telemetry import MemorySink, TelemetryBus, validate_record

needs_cc = pytest.mark.skipif(not cc_available(), reason="no C compiler")


class TestPackedPlanes:
    @pytest.mark.parametrize("n", [1, 5, 63, 64, 65, 130, 256])
    def test_pack_unpack_roundtrip(self, n):
        rng = np.random.default_rng(n)
        X = rng.integers(0, 2, (7, n), dtype=np.uint8)
        planes = pack_rows(X)
        assert planes.dtype == np.uint64
        assert planes.shape == (7, (n + 63) // 64)
        assert np.array_equal(unpack_rows(planes, n), X)

    def test_bit_layout_is_little_endian(self):
        # Bit i lives in word i >> 6 at position i & 63.
        x = np.zeros((1, 130), dtype=np.uint8)
        x[0, 0] = 1
        x[0, 64] = 1
        x[0, 129] = 1
        planes = pack_rows(x)
        assert planes[0, 0] == 1
        assert planes[0, 1] == 1
        assert planes[0, 2] == 1 << (129 - 128)

    def test_pad_bits_are_zero(self):
        x = np.ones((2, 70), dtype=np.uint8)
        planes = pack_rows(x)
        assert planes[0, 1] == (1 << (70 - 64)) - 1

    @pytest.mark.parametrize("n", [1, 64, 100, 257])
    def test_hamming_matches_unpacked_xor(self, n):
        rng = np.random.default_rng(n + 1)
        X = rng.integers(0, 2, (9, n), dtype=np.uint8)
        target = rng.integers(0, 2, (n,), dtype=np.uint8)
        got = hamming_distances(pack_rows(X), pack_rows(target[None, :]))
        expected = (X ^ target).sum(axis=1)
        assert np.array_equal(got, expected)
        # The distance IS the straight-search flip count (Algorithm 5).
        assert got.dtype == np.int64


class TestFallback:
    @pytest.fixture
    def masked(self, monkeypatch):
        """Compiler masked (as on a machine without cc), warning reset."""
        monkeypatch.setenv("REPRO_NO_CC", "1")
        monkeypatch.setattr(bp_mod, "_warned", False)

    def test_cc_available_respects_mask(self, masked):
        assert not cc_available()

    def test_fallback_is_tagged_numpy(self, masked):
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = make_bitplane_backend()
        assert isinstance(backend, NumpyBackend)
        assert not isinstance(backend, BitplaneBackend)
        assert backend.name == "numpy"
        assert backend.fallback_from == "bitplane"

    def test_warning_fires_once_per_process(self, masked):
        with pytest.warns(RuntimeWarning):
            make_bitplane_backend()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            make_bitplane_backend()

    def test_engine_emits_fallback_event(self, masked):
        sink = MemorySink()
        bus = TelemetryBus([sink])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            BulkSearchEngine(
                QuboMatrix.random(16, seed=0), 2, backend="bitplane", bus=bus
            )
        events = sink.named("backend.fallback")
        assert len(events) == 1
        assert events[0].fields["requested"] == "bitplane"
        assert events[0].fields["using"] == "numpy"
        for record in sink.records():
            validate_record(record)

    def test_fallback_still_solves(self, masked):
        from repro.api import solve

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            res = solve(
                QuboMatrix.random(24, seed=5), max_rounds=3, seed=7,
                backend="bitplane",
            )
        assert res.best_energy <= 0


@needs_cc
class TestTierSelection:
    def test_int16_weights_pick_w16_d32(self):
        pw = BitplaneBackend().prepare_dense(
            np.ascontiguousarray(QuboMatrix.random(64, seed=1).W, dtype=np.int64)
        )
        assert pw.planes.variant == "dense_w16_d32"
        assert pw.planes.weights.dtype == np.int16

    def test_wide_weights_pick_w64(self):
        W = np.ascontiguousarray(QuboMatrix.random(64, seed=2).W, dtype=np.int64)
        pw = BitplaneBackend().prepare_dense(W * 3)  # beyond int16
        assert pw.planes.variant == "dense_w64"

    def test_int16_min_edge_stays_w16(self):
        # -32768 is representable in int16; sign is applied after the
        # int32 widening in-kernel, so no wrap fixup is needed.
        W = np.zeros((4, 4), dtype=np.int64)
        W[0, 1] = W[1, 0] = -(2**15)
        pw = BitplaneBackend().prepare_dense(W)
        assert pw.planes.variant == "dense_w16_d32"

    def test_huge_diagonal_forces_w64(self):
        # Off-diagonals fit int16 but the Δ bound exceeds int32.
        W = np.zeros((4, 4), dtype=np.int64)
        W[0, 1] = W[1, 0] = 7
        W[2, 2] = 2**40
        pw = BitplaneBackend().prepare_dense(W)
        assert pw.planes.variant == "dense_w64"

    def test_sparse_uses_csr_kernel(self):
        q = QuboMatrix.random(32, seed=3)
        pw = BitplaneBackend().prepare_sparse(SparseQubo.from_dense(q.W))
        assert pw.planes.variant == "sparse_w64"

    def test_stored_rows_have_zero_diagonal(self):
        pw = BitplaneBackend().prepare_dense(
            np.ascontiguousarray(QuboMatrix.random(16, seed=4).W, dtype=np.int64)
        )
        assert not np.diagonal(pw.planes.weights).any()


def _lockstep(problem, *, steps, windows=16, sparse=False):
    """Two engines, one step at a time: every intermediate state equal."""
    weights = SparseQubo.from_dense(problem.W) if sparse else problem
    ref = BulkSearchEngine(weights, 6, windows=windows, backend="numpy")
    bit = BulkSearchEngine(weights, 6, windows=windows, backend=resolve_backend("bitplane"))
    assert bit.backend.name == "bitplane"
    for step in range(steps):
        ref.local_steps(1)
        bit.local_steps(1)
        for field in ("X", "delta", "energy", "best_energy", "best_x", "offsets"):
            assert np.array_equal(getattr(ref, field), getattr(bit, field)), (
                f"{field} diverged at step {step + 1}"
            )
    assert ref.counters.as_dict() == bit.counters.as_dict()


@needs_cc
class TestSingleStepEquivalence:
    """Per-step ΔE/select pin against the scalar Algorithm 4/5 semantics
    (via the numpy reference, itself pinned to the scalar walk)."""

    def test_w16_tier_every_step(self):
        _lockstep(QuboMatrix.random(48, seed=11), steps=25)

    def test_w16_tier_window_one(self):
        _lockstep(QuboMatrix.random(33, seed=12), steps=25, windows=1)

    def test_w64_tier_every_step(self):
        q = QuboMatrix.random(48, seed=13)
        wide = QuboMatrix(np.asarray(q.W, dtype=np.int64) * 5, check=False)
        ref = BulkSearchEngine(wide, 4, windows=9, backend="numpy")
        bit = BulkSearchEngine(wide, 4, windows=9, backend="bitplane")
        assert bit._pw.planes.variant == "dense_w64"
        for step in range(25):
            ref.local_steps(1)
            bit.local_steps(1)
            for field in ("X", "delta", "energy", "best_energy", "best_x"):
                assert np.array_equal(getattr(ref, field), getattr(bit, field)), (
                    f"{field} diverged at step {step + 1}"
                )

    def test_sparse_every_step(self):
        _lockstep(QuboMatrix.random(48, seed=14), steps=25, sparse=True)

    def test_sparse_delta_update_counter_matches(self):
        q = QuboMatrix.random(40, seed=15)
        sp = SparseQubo.from_dense(q.W)
        ref = BulkSearchEngine(sp, 5, windows=8, backend="numpy")
        bit = BulkSearchEngine(sp, 5, windows=8, backend="bitplane")
        ref.local_steps(60)
        bit.local_steps(60)
        # Sparse updates are degree(k)+1 per flip — data dependent, so
        # equality here means the same bits were flipped in the same order.
        assert ref.counters.delta_updates == bit.counters.delta_updates
        assert np.array_equal(ref.X, bit.X)

    def test_multi_step_batch_matches_single_steps(self):
        q = QuboMatrix.random(52, seed=16)
        one = BulkSearchEngine(q, 3, windows=12, backend="bitplane")
        batch = BulkSearchEngine(q, 3, windows=12, backend="bitplane")
        for _ in range(30):
            one.local_steps(1)
        batch.local_steps(30)
        for field in ("X", "delta", "energy", "best_energy", "best_x", "offsets"):
            assert np.array_equal(getattr(one, field), getattr(batch, field))
