"""Property-based tests for the bulk engine: arbitrary interleavings of
straight searches and local steps must never desynchronize the batched
state from ground truth."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.engine import BulkSearchEngine
from repro.qubo import QuboMatrix, energy


@st.composite
def engine_program(draw):
    """(seed, windows, ops) where ops is a mixed straight/local script."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_blocks = draw(st.integers(1, 4))
    windows = draw(
        st.lists(st.integers(1, 20), min_size=n_blocks, max_size=n_blocks)
    )
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("local"), st.integers(1, 15)),
                st.tuples(st.just("straight"), st.integers(0, 2**31 - 1)),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return seed, n_blocks, windows, ops


class TestEngineInvariants:
    @given(engine_program())
    @settings(max_examples=30, deadline=None)
    def test_state_consistent_under_any_interleaving(self, program):
        seed, n_blocks, windows, ops = program
        n = 20
        q = QuboMatrix.random(n, seed=seed % 9973)
        eng = BulkSearchEngine(q, n_blocks, windows=np.array(windows))
        rng = np.random.default_rng(seed)
        for kind, arg in ops:
            if kind == "local":
                eng.local_steps(arg)
            else:
                targets = np.random.default_rng(arg).integers(
                    0, 2, (n_blocks, n), dtype=np.uint8
                )
                eng.straight_to(targets)
                assert (eng.X == targets).all()
        # Ground truth: recomputed energy and delta match exactly.
        eng.validate()
        # Best tracking is self-consistent wherever a best was recorded.
        for b in range(n_blocks):
            e, x = eng.block_best(b)
            if e < np.iinfo(np.int64).max:
                assert e == energy(q, x)
                assert e <= eng.energy[b]

    @given(st.integers(0, 2**31 - 1), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_counters_are_exact(self, seed, n_blocks):
        n = 16
        q = QuboMatrix.random(n, seed=seed % 9973)
        eng = BulkSearchEngine(q, n_blocks, windows=4)
        targets = np.random.default_rng(seed).integers(
            0, 2, (n_blocks, n), dtype=np.uint8
        )
        straight = eng.straight_to(targets)
        assert straight == int(targets.sum())  # from zero state
        eng.local_steps(7)
        assert eng.counters.flips == straight + 7 * n_blocks
        assert eng.counters.evaluated == eng.counters.flips * n
