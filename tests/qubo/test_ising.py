"""Tests for QUBO ↔ Ising conversions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.qubo import QuboMatrix, energy
from repro.qubo.ising import (
    IsingModel,
    bits_to_spins,
    ising_to_qubo,
    qubo_to_ising,
    spins_to_bits,
)


class TestSpinMaps:
    def test_roundtrip(self):
        x = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert np.array_equal(spins_to_bits(bits_to_spins(x)), x)

    def test_bits_to_spins_values(self):
        s = bits_to_spins(np.array([0, 1], dtype=np.uint8))
        assert np.array_equal(s, [-1, 1])

    def test_spins_validation(self):
        with pytest.raises(ValueError):
            spins_to_bits(np.array([0, 1]))


class TestIsingModel:
    def test_validation_square(self):
        with pytest.raises(ValueError, match="square"):
            IsingModel(np.zeros((2, 3)), np.zeros(2))

    def test_validation_h_shape(self):
        with pytest.raises(ValueError, match="h"):
            IsingModel(np.zeros((2, 2)), np.zeros(3))

    def test_validation_symmetry(self):
        J = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            IsingModel(J, np.zeros(2))

    def test_validation_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            IsingModel(np.eye(2), np.zeros(2))

    def test_energy_spin_validation(self):
        m = IsingModel(np.zeros((2, 2)), np.zeros(2))
        with pytest.raises(ValueError, match="±1"):
            m.energy(np.array([0.5, 1.0]))

    def test_ground_state_bound_holds(self):
        q = QuboMatrix.random(8, seed=4, low=-5, high=5)
        m = qubo_to_ising(q)
        bound = m.ground_state_bound()
        for code in range(256):
            s = np.array([1 if code >> i & 1 else -1 for i in range(8)])
            assert m.energy(s) >= bound - 1e-9


class TestQuboToIsing:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 10))
    def test_energy_preserved_for_all_x(self, seed, n):
        q = QuboMatrix.random(n, seed=seed, low=-20, high=20)
        m = qubo_to_ising(q)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            x = rng.integers(0, 2, n, dtype=np.uint8)
            assert m.energy(bits_to_spins(x)) == pytest.approx(energy(q, x))

    def test_j_diagonal_zero(self):
        m = qubo_to_ising(QuboMatrix.random(5, seed=1))
        assert np.all(np.diagonal(m.J) == 0)


class TestIsingToQubo:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 8))
    def test_roundtrip(self, seed, n):
        q = QuboMatrix.random(n, seed=seed, low=-20, high=20)
        m = qubo_to_ising(q)
        q2, constant = ising_to_qubo(m)
        assert q2 == q
        assert constant == pytest.approx(0.0)

    def test_energy_relation_with_constant(self):
        # A hand-built Ising model with a nonzero constant offset.
        J = np.array([[0.0, -1.5], [-1.5, 0.0]])
        h = np.array([0.5, -1.0])
        m = IsingModel(J, h, offset=10.0)
        q, constant = ising_to_qubo(m)
        for code in range(4):
            x = np.array([code & 1, code >> 1], dtype=np.uint8)
            assert m.energy(bits_to_spins(x)) == pytest.approx(
                energy(q, x) + constant
            )

    def test_non_integral_rejected(self):
        J = np.array([[0.0, 0.3], [0.3, 0.0]])
        m = IsingModel(J, np.zeros(2))
        with pytest.raises(ValueError, match="integer"):
            ising_to_qubo(m)
