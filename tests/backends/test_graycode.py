"""Gray-code exact backend: oracle agreement, edge cases, finisher.

``graycode_minimum`` is the ground-truth oracle of the backend suite:
these tests pin it against an independent numpy brute force (all 2^n
states materialized at once) and against ``repro.search.exact``'s
blocked enumerator, for dense and densified-CSR weights, then exercise
its second role as the decomposition loop's exact finisher.
"""

import numpy as np
import pytest

from repro.abs.decompose import DecompositionConfig, DecompositionSolver
from repro.backends import available_backends, resolve_backend
from repro.backends.graycode import (
    MAX_GRAYCODE_BITS,
    GraycodeBackend,
    graycode_minimum,
)
from repro.gpusim import BulkSearchEngine
from repro.qubo import QuboMatrix, SparseQubo
from repro.search.exact import solve_exact
from repro.telemetry import MemorySink, TelemetryBus


def _brute_force_minimum(W: np.ndarray) -> int:
    """Independent oracle: materialize all 2^n states and evaluate."""
    n = W.shape[0]
    states = (
        (np.arange(1 << n)[:, None] >> np.arange(n)[None, :]) & 1
    ).astype(np.int64)
    return int(((states @ W) * states).sum(axis=1).min())


def _densify(sp: SparseQubo) -> np.ndarray:
    W = np.asarray(sp.csr.todense()).astype(np.int64)
    np.fill_diagonal(W, sp.diag)
    return W


class TestOracle:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 11])
    def test_agrees_with_numpy_brute_force(self, n):
        for seed in (0, 1, 2):
            W = np.ascontiguousarray(
                QuboMatrix.random(n, seed=100 * seed + n).W, dtype=np.int64
            )
            sol = graycode_minimum(W)
            assert sol.energy == _brute_force_minimum(W)
            assert sol.evaluated == 2**n

    @pytest.mark.parametrize("n", [12, 14, 16])
    def test_agrees_with_solve_exact_dense(self, n):
        q = QuboMatrix.random(n, seed=n)
        sol = graycode_minimum(q)
        assert sol.energy == solve_exact(q.W).energy

    @pytest.mark.parametrize("n", [9, 13, 16])
    def test_agrees_with_solve_exact_sparse(self, n):
        rng = np.random.default_rng(n)
        W = np.zeros((n, n), dtype=np.int64)
        for _ in range(3 * n):
            i, j = rng.integers(0, n, 2)
            if i != j:
                w = int(rng.integers(-40, 40))
                W[i, j] += w
                W[j, i] += w
        np.fill_diagonal(W, rng.integers(-30, 30, n))
        dense = _densify(SparseQubo.from_dense(W))
        assert np.array_equal(dense, W)
        sol = graycode_minimum(dense)
        assert sol.energy == solve_exact(W).energy

    def test_returned_x_achieves_returned_energy(self):
        q = QuboMatrix.random(13, seed=7)
        sol = graycode_minimum(q)
        x = sol.x.astype(np.int64)
        assert int(x @ np.asarray(q.W, dtype=np.int64) @ x) == sol.energy

    def test_n1(self):
        assert graycode_minimum(np.array([[5]])).energy == 0
        assert graycode_minimum(np.array([[-5]])).energy == -5


class TestValidation:
    def test_rejects_oversized(self):
        with pytest.raises(ValueError, match="capped"):
            graycode_minimum(np.zeros((MAX_GRAYCODE_BITS + 1,) * 2, dtype=np.int64))

    def test_rejects_empty_and_nonsquare(self):
        with pytest.raises(ValueError):
            graycode_minimum(np.zeros((0, 0), dtype=np.int64))
        with pytest.raises(ValueError, match="square"):
            graycode_minimum(np.zeros((2, 3), dtype=np.int64))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            graycode_minimum(np.array([[0, 1], [2, 0]]))


class TestBackendRegistration:
    def test_registered_and_resolvable(self):
        assert "graycode" in available_backends()
        backend = resolve_backend("graycode")
        assert isinstance(backend, GraycodeBackend)
        assert backend.fallback_from is None

    def test_engine_kernels_match_numpy(self):
        q = QuboMatrix.random(32, seed=21)
        ref = BulkSearchEngine(q, 3, windows=7, backend="numpy")
        gc = BulkSearchEngine(q, 3, windows=7, backend="graycode")
        for eng in (ref, gc):
            eng.local_steps(40)
        assert np.array_equal(ref.X, gc.X)
        assert np.array_equal(ref.best_energy, gc.best_energy)


class TestExactFinisher:
    def test_one_shot_finisher_is_exact(self):
        q = QuboMatrix.random(14, seed=5)
        cfg = DecompositionConfig(
            subproblem_size=14, iterations=1, exact_below=14, seed=0
        )
        res = DecompositionSolver(q, cfg).solve()
        assert res.best_energy == solve_exact(q.W).energy

    def test_finisher_counters(self):
        q = QuboMatrix.random(40, seed=3)
        cfg = DecompositionConfig(
            subproblem_size=12, iterations=5, exact_below=12, seed=1
        )
        bus = TelemetryBus([MemorySink()])
        DecompositionSolver(q, cfg, telemetry=bus).solve()
        bus.close()
        counters = bus.counters.snapshot()
        assert counters["backend.graycode.finisher_calls"] == 5
        assert counters["backend.graycode.enumerated"] == 5 * 2**12

    def test_finisher_never_worse_than_inner_abs(self):
        q = QuboMatrix.random(36, seed=9)
        base = DecompositionConfig(subproblem_size=12, iterations=8, seed=4)
        exact = DecompositionConfig(
            subproblem_size=12, iterations=8, exact_below=12, seed=4
        )
        res_abs = DecompositionSolver(q, base).solve()
        res_exact = DecompositionSolver(q, exact).solve()
        # Same subset trajectory (same seed) with each subproblem solved
        # to optimality cannot lose to the heuristic inner solver.
        assert res_exact.best_energy <= res_abs.best_energy

    def test_threshold_only_triggers_at_or_below(self):
        q = QuboMatrix.random(40, seed=8)
        cfg = DecompositionConfig(
            subproblem_size=20, iterations=2, exact_below=12, seed=2
        )
        bus = TelemetryBus([MemorySink()])
        DecompositionSolver(q, cfg, telemetry=bus).solve()
        bus.close()
        assert bus.counters.get("backend.graycode.finisher_calls") == 0

    @pytest.mark.parametrize("bad", [0, 1, MAX_GRAYCODE_BITS + 1])
    def test_config_validation(self, bad):
        with pytest.raises(ValueError, match="exact_below"):
            DecompositionConfig(exact_below=bad)
