"""Exact (exhaustive) QUBO solver for small instances.

Enumerates all 2ⁿ bit vectors in vectorized blocks and returns the
global minimum.  Exact methods top out around a couple hundred bits in
the literature (paper §1 cites 200); this brute-force oracle is for
*tests* — it certifies that the heuristic stack actually reaches ground
states on instances up to ``n ≈ 22``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qubo.matrix import WeightsLike, as_weight_matrix

#: Refuse to enumerate beyond this many bits (2^24 × n work).
MAX_EXACT_BITS = 24

#: Solutions evaluated per vectorized block.
_BLOCK = 1 << 14


@dataclass(frozen=True)
class ExactSolution:
    """Result of exhaustive enumeration."""

    x: np.ndarray
    energy: int
    evaluated: int
    #: Number of distinct optimal solutions (ties at the minimum).
    degeneracy: int


def _bits_of_range(start: int, stop: int, n: int) -> np.ndarray:
    """Bit matrix for integers ``start..stop-1`` (LSB = bit 0)."""
    codes = np.arange(start, stop, dtype=np.uint64)
    shifts = np.arange(n, dtype=np.uint64)
    return ((codes[:, None] >> shifts[None, :]) & 1).astype(np.uint8)


def solve_exact(weights: WeightsLike) -> ExactSolution:
    """Return a guaranteed-optimal solution by full enumeration.

    Raises :class:`ValueError` for ``n > MAX_EXACT_BITS``.
    """
    W = as_weight_matrix(weights)
    n = W.shape[0]
    if n > MAX_EXACT_BITS:
        raise ValueError(
            f"exact enumeration supports n <= {MAX_EXACT_BITS}, got {n}"
        )
    if n == 0:
        return ExactSolution(np.zeros(0, dtype=np.uint8), 0, 1, 1)

    Wf = W.astype(np.float64)  # exact: |E| < 2^53 for the sizes allowed
    total = 1 << n
    best_e = None
    best_code = 0
    degeneracy = 0
    for start in range(0, total, _BLOCK):
        stop = min(start + _BLOCK, total)
        X = _bits_of_range(start, stop, n).astype(np.float64)
        energies = np.einsum("bi,ij,bj->b", X, Wf, X)
        block_min = energies.min()
        if best_e is None or block_min < best_e:
            best_e = block_min
            best_code = start + int(np.argmin(energies))
            degeneracy = int(np.count_nonzero(energies == block_min))
        elif block_min == best_e:
            degeneracy += int(np.count_nonzero(energies == block_min))

    x = _bits_of_range(best_code, best_code + 1, n)[0]
    return ExactSolution(x=x, energy=int(best_e), evaluated=total, degeneracy=degeneracy)
