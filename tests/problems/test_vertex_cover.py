"""Tests for minimum vertex cover → QUBO."""

import networkx as nx
import numpy as np
import pytest

from repro.problems.vertex_cover import (
    decode_cover,
    is_vertex_cover,
    vertex_cover_to_qubo,
)
from repro.qubo import energy
from repro.search import solve_exact


class TestIdentity:
    def test_energy_counts_size_and_violations(self):
        g = nx.path_graph(4)
        q, offset = vertex_cover_to_qubo(g, penalty=4)
        scale = q.energy_scale()
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.integers(0, 2, 4, dtype=np.uint8)
            uncovered = sum(
                1 for u, v in g.edges() if not (x[u] or x[v])
            )
            assert energy(q, x) / scale + offset == int(x.sum()) + 4 * uncovered


class TestGroundStates:
    def test_cycle_graph(self):
        g = nx.cycle_graph(6)
        q, offset = vertex_cover_to_qubo(g)
        sol = solve_exact(q)
        assert is_vertex_cover(g, sol.x)
        assert sol.energy / q.energy_scale() + offset == 3

    def test_star_graph_center_only(self):
        g = nx.star_graph(5)  # center 0 + 5 leaves
        q, offset = vertex_cover_to_qubo(g)
        sol = solve_exact(q)
        assert is_vertex_cover(g, sol.x)
        assert decode_cover(sol.x) == [0]

    def test_complete_graph_needs_n_minus_1(self):
        g = nx.complete_graph(5)
        q, offset = vertex_cover_to_qubo(g, penalty=6)
        sol = solve_exact(q)
        assert is_vertex_cover(g, sol.x)
        assert len(decode_cover(sol.x)) == 4


class TestValidation:
    def test_penalty_too_small(self):
        with pytest.raises(ValueError, match="penalty"):
            vertex_cover_to_qubo(nx.path_graph(3), penalty=1)

    def test_self_loop_rejected(self):
        g = nx.Graph()
        g.add_nodes_from(range(2))
        g.add_edge(1, 1)
        with pytest.raises(ValueError, match="self-loop"):
            vertex_cover_to_qubo(g)

    def test_non_contiguous_nodes(self):
        g = nx.Graph()
        g.add_nodes_from([1, 2])
        with pytest.raises(ValueError, match="0..n-1"):
            vertex_cover_to_qubo(g)

    def test_is_vertex_cover(self):
        g = nx.path_graph(3)
        assert is_vertex_cover(g, np.array([0, 1, 0], dtype=np.uint8))
        assert not is_vertex_cover(g, np.array([1, 0, 0], dtype=np.uint8))
