"""Tests for the calibrated throughput model — the Table 2 'shape'
assertions (who wins, where the bits-per-thread peak falls, scaling)."""

import pytest

from repro.gpusim.occupancy import valid_bits_per_thread
from repro.gpusim.timing import ThroughputModel, calibrated_model, model_table2
from repro.paperdata import TABLE_2, TABLE_2_GPUS


@pytest.fixture(scope="module")
def model():
    return calibrated_model()


class TestFitQuality:
    def test_every_published_rate_within_40_percent(self, model):
        for row in TABLE_2:
            pred = model.search_rate(row.n, row.bits_per_thread, TABLE_2_GPUS)
            rel = abs(pred - row.rate_tera * 1e12) / (row.rate_tera * 1e12)
            assert rel < 0.40, (row, rel)

    def test_mean_error_under_20_percent(self, model):
        errs = [
            abs(model.search_rate(r.n, r.bits_per_thread, TABLE_2_GPUS) - r.rate_tera * 1e12)
            / (r.rate_tera * 1e12)
            for r in TABLE_2
        ]
        assert sum(errs) / len(errs) < 0.20


class TestShape:
    @pytest.mark.parametrize("n", [1024, 2048, 4096, 8192, 16384, 32768])
    def test_optimal_bits_per_thread_matches_paper(self, model, n):
        published_best = max(
            (r for r in TABLE_2 if r.n == n), key=lambda r: r.rate_tera
        ).bits_per_thread
        # Restrict the model to the configurations the paper evaluated.
        candidates = [r.bits_per_thread for r in TABLE_2 if r.n == n]
        model_best = max(candidates, key=lambda p: model.search_rate(n, p))
        assert model_best == published_best

    def test_peak_rate_magnitude(self, model):
        """The headline 1.24 T/s at n=1k, p=16 is reproduced within 20 %."""
        pred = model.search_rate(1024, 16, 4)
        assert pred == pytest.approx(1.24e12, rel=0.20)

    def test_rate_decreases_with_problem_size_at_fixed_p(self, model):
        """At fixed bits-per-thread (p = 16), bigger problems search
        slower — the paper's p = 16 column falls 1.24 → 1.01 → 0.732 →
        0.537 T/s from 1 k to 8 k."""
        rates = [model.search_rate(n, 16, 4) for n in (1024, 2048, 4096, 8192)]
        assert all(rates[i] > rates[i + 1] for i in range(len(rates) - 1))


class TestScaling:
    def test_linear_in_gpu_count(self, model):
        """Figure 8: rate is exactly linear in the GPU count."""
        base = model.search_rate(1024, 16, 1)
        for g in (2, 3, 4):
            assert model.search_rate(1024, 16, g) == pytest.approx(g * base)

    def test_invalid_gpu_count(self, model):
        with pytest.raises(ValueError):
            model.search_rate(1024, 16, 0)


class TestLatency:
    def test_positive_over_entire_valid_grid(self, model):
        for n in (1024, 2048, 4096, 8192, 16384, 32768):
            for p in valid_bits_per_thread(n):
                assert model.step_latency(n, p) > 0

    def test_nonpositive_latency_raises(self):
        bad = ThroughputModel(a=-1.0, d=0.0, b=0.0, c=0.0)
        with pytest.raises(ValueError, match="latency"):
            bad.step_latency(1024, 16)

    def test_best_bits_per_thread_helper(self, model):
        assert model.best_bits_per_thread(32768) == 32


class TestModelTable2:
    def test_rows_cover_all_published_configs(self, model):
        rows = {(r["n"], r["p"]) for r in model_table2(model)}
        assert {(r.n, r.bits_per_thread) for r in TABLE_2} <= rows

    def test_occupancy_columns_consistent(self, model):
        for row in model_table2(model, sizes=(1024,)):
            assert row["threads"] * row["p"] >= row["n"]
            assert row["rate"] > 0
