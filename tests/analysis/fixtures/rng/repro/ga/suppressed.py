"""Fixture: a violation excused line-by-line with noqa."""

import numpy as np


def draw():
    return np.random.rand(4)  # repro: noqa[rng-discipline]
