"""Fixture backend breaking every purity constraint."""

import subprocess
import warnings

from repro.backends.base import KernelBackend
from repro.telemetry import make_bus

_CACHE = {}


class BadBackend(KernelBackend):
    name = "bad"

    def flip(self, bus, state, k):
        _CACHE[k] = state[k]
        bus.counters.inc("engine.flips")
        state[k] ^= 1

    def run_local_steps(self, pw, X, steps):
        subprocess.run(["cc", "-O3", "kernel.c"])
        warnings.warn("recompiled mid-search")
        print("stepping")
        return steps

    def reset(self):
        global _CACHE
        _CACHE = {}
