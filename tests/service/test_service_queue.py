"""Queue semantics of the warm-fleet solver service.

These tests avoid spawning worker processes: jobs run in ``sync`` mode
on the dispatcher thread, and a gate patched into ``solve`` holds the
dispatcher busy so queue ordering and cancellation can be observed
deterministically.
"""

import threading

import pytest

from repro.abs import AbsConfig
from repro.abs.solver import AdaptiveBulkSearch
from repro.qubo import QuboMatrix
from repro.service import ServiceConfig, SolverService
from repro.telemetry import MemorySink, TelemetryBus

pytestmark = [pytest.mark.service, pytest.mark.timeout(60)]


@pytest.fixture
def problem():
    return QuboMatrix.random(20, seed=11)


def cfg(seed, **overrides):
    kwargs = dict(blocks_per_gpu=4, local_steps=4, max_rounds=3, seed=seed)
    kwargs.update(overrides)
    return AbsConfig(**kwargs)


@pytest.fixture
def gate(monkeypatch):
    """Patch ``solve`` so every job blocks until the gate opens."""
    evt = threading.Event()
    real = AdaptiveBulkSearch.solve

    def gated(self, mode="sync"):
        assert evt.wait(30), "test gate never opened"
        return real(self, mode)

    monkeypatch.setattr(AdaptiveBulkSearch, "solve", gated)
    return evt


class TestScheduling:
    def test_priority_then_fifo(self, problem, gate):
        sink = MemorySink()
        with SolverService(telemetry=TelemetryBus([sink])) as svc:
            first = svc.submit(problem, cfg(1), mode="sync")
            while svc.status(first)["status"] == "queued":
                pass
            # While the dispatcher is gated on job 1, queue three more:
            # the high-priority job must overtake, ties stay FIFO.
            low_a = svc.submit(problem, cfg(2), mode="sync")
            high = svc.submit(problem, cfg(3), mode="sync", priority=5)
            low_b = svc.submit(problem, cfg(4), mode="sync")
            gate.set()
            for jid in (first, low_a, high, low_b):
                svc.result(jid, timeout=30)
        started = [e.fields["job"] for e in sink.named("service.job_start")]
        assert started == [first, high, low_a, low_b]

    def test_status_lifecycle(self, problem, gate):
        with SolverService() as svc:
            jid = svc.submit(problem, cfg(1), mode="sync")
            queued_or_running = svc.status(jid)["status"]
            assert queued_or_running in ("queued", "running")
            gate.set()
            res = svc.result(jid, timeout=30)
            snap = svc.status(jid)
        assert snap["status"] == "done"
        assert snap["best_energy"] == res.best_energy
        assert snap["rounds"] == res.rounds == 3
        assert snap["elapsed"] >= 0.0

    def test_unknown_job_and_bad_mode(self, problem):
        with SolverService() as svc:
            with pytest.raises(KeyError):
                svc.status(99)
            with pytest.raises(ValueError, match="unknown mode"):
                svc.submit(problem, cfg(1), mode="thread")

    def test_max_queue_enforced(self, problem, gate):
        with SolverService(ServiceConfig(max_queue=1)) as svc:
            running = svc.submit(problem, cfg(1), mode="sync")
            # Wait until job 1 leaves the queue for the dispatcher.
            while svc.status(running)["status"] == "queued":
                pass
            svc.submit(problem, cfg(2), mode="sync")
            with pytest.raises(RuntimeError, match="queue is full"):
                svc.submit(problem, cfg(3), mode="sync")
            gate.set()

    def test_cancelled_queued_job_frees_its_slot(self, problem, gate):
        """max_queue counts QUEUED jobs — a cancelled job's stale heap
        entry (lazily popped by the dispatcher) must not occupy a slot."""
        with SolverService(ServiceConfig(max_queue=1)) as svc:
            running = svc.submit(problem, cfg(1), mode="sync")
            while svc.status(running)["status"] == "queued":
                pass
            stale = svc.submit(problem, cfg(2), mode="sync")
            assert svc.cancel(stale)
            replacement = svc.submit(problem, cfg(3), mode="sync")
            with pytest.raises(RuntimeError, match="queue is full"):
                svc.submit(problem, cfg(4), mode="sync")
            gate.set()
            assert svc.result(replacement, timeout=30).rounds == 3

    def test_submit_after_close_raises(self, problem):
        svc = SolverService()
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(problem, cfg(1), mode="sync")


class TestCancellation:
    def test_cancel_queued_job(self, problem, gate):
        with SolverService() as svc:
            running = svc.submit(problem, cfg(1), mode="sync")
            queued = svc.submit(problem, cfg(2), mode="sync")
            assert svc.cancel(queued)
            assert svc.status(queued)["status"] == "cancelled"
            with pytest.raises(RuntimeError, match="cancelled"):
                svc.result(queued, timeout=5)
            gate.set()
            svc.result(running, timeout=30)
            # Cancelling a finished job is a no-op.
            assert not svc.cancel(running)

    def test_close_cancels_queued_jobs(self, problem, gate):
        svc = SolverService()
        running = svc.submit(problem, cfg(1), mode="sync")
        queued = svc.submit(problem, cfg(2), mode="sync")
        gate.set()
        svc.close()
        assert svc.status(queued)["status"] == "cancelled"
        assert svc.status(running)["status"] in ("done", "cancelled")


class TestResultCache:
    def test_seeded_repeat_hits_and_is_bit_identical(self, problem):
        sink = MemorySink()
        bus = TelemetryBus([sink])
        with SolverService(telemetry=bus) as svc:
            a = svc.result(svc.submit(problem, cfg(7), mode="sync"), timeout=30)
            b_id = svc.submit(problem, cfg(7), mode="sync")
            b = svc.result(b_id, timeout=30)
            assert svc.status(b_id)["cache_hit"]
        assert b.best_energy == a.best_energy
        assert b.best_x.tobytes() == a.best_x.tobytes()
        assert (b.rounds, b.sweeps, b.counters) == (a.rounds, a.sweeps, a.counters)
        assert b is not a  # deep copy, not the cached object itself
        assert bus.counters.snapshot()["service.cache_hits"] == 1

    def test_unseeded_jobs_never_cached(self, problem):
        with SolverService() as svc:
            first = svc.submit(problem, cfg(None), mode="sync")
            svc.result(first, timeout=30)
            second = svc.submit(problem, cfg(None), mode="sync")
            svc.result(second, timeout=30)
            assert not svc.status(second)["cache_hit"]

    def test_mode_is_part_of_the_key(self, problem):
        # A sync result must never answer for a process-mode submission
        # of the same (problem, config, seed) — the digests differ.
        from repro.qubo.io import run_digest

        assert run_digest(problem, cfg(7), extra={"mode": "sync"}) != run_digest(
            problem, cfg(7), extra={"mode": "process"}
        )

    def test_cancelled_job_is_not_cached(self, problem, gate):
        """A job cancelled while running must not poison the cache: a
        resubmission of the same (problem, config, seed) runs fresh
        instead of returning the truncated result as a DONE hit."""
        with SolverService() as svc:
            jid = svc.submit(problem, cfg(7), mode="sync")
            while svc.status(jid)["status"] == "queued":
                pass
            assert svc.cancel(jid)
            gate.set()
            svc.result(jid, timeout=30)
            assert svc.status(jid)["status"] == "cancelled"
            assert not svc._result_cache
            again = svc.submit(problem, cfg(7), mode="sync")
            res = svc.result(again, timeout=30)
            assert not svc.status(again)["cache_hit"]
            assert svc.status(again)["status"] == "done"
            assert res.rounds == 3

    def test_nondeterministic_configs_are_never_cached(self, problem, gate):
        """A wall-clock time_limit or free-running process mode makes a
        seeded run a sample, not a pure function of the run digest —
        such jobs get no cache key.  Lockstep process jobs do."""
        with SolverService() as svc:
            running = svc.submit(problem, cfg(1), mode="sync")
            while svc.status(running)["status"] == "queued":
                pass
            timed = svc.submit(problem, cfg(7, time_limit=60.0), mode="sync")
            free = svc.submit(problem, cfg(7), mode="process")
            locked = svc.submit(problem, cfg(7, lockstep=True), mode="process")
            assert svc._jobs[timed].run_key is None
            assert svc._jobs[free].run_key is None
            assert svc._jobs[locked].run_key is not None
            for jid in (timed, free, locked):  # never reach the fleet
                assert svc.cancel(jid)
            gate.set()
            svc.result(running, timeout=30)

    def test_cache_disabled_when_size_zero(self, problem):
        with SolverService(ServiceConfig(result_cache_size=0)) as svc:
            svc.result(svc.submit(problem, cfg(7), mode="sync"), timeout=30)
            again = svc.submit(problem, cfg(7), mode="sync")
            svc.result(again, timeout=30)
            assert not svc.status(again)["cache_hit"]


class TestFailureIsolation:
    def test_failed_job_does_not_poison_the_service(self, problem, monkeypatch):
        real = AdaptiveBulkSearch.solve
        calls = {"n": 0}

        def flaky(self, mode="sync"):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("injected failure")
            return real(self, mode)

        monkeypatch.setattr(AdaptiveBulkSearch, "solve", flaky)
        sink = MemorySink()
        bus = TelemetryBus([sink])
        with SolverService(telemetry=bus) as svc:
            bad = svc.submit(problem, cfg(1), mode="sync")
            good = svc.submit(problem, cfg(2), mode="sync")
            with pytest.raises(RuntimeError, match="injected failure"):
                svc.result(bad, timeout=30)
            assert svc.status(bad)["status"] == "failed"
            assert svc.result(good, timeout=30).rounds == 3
        counts = bus.counters.snapshot()
        assert counts["service.jobs_failed"] == 1
        assert counts["service.jobs_completed"] == 1
        ends = {e.fields["job"]: e.fields["status"] for e in sink.named("service.job_end")}
        assert ends == {bad: "failed", good: "done"}
