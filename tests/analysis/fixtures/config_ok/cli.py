"""Fixture cli: the parser passes every AbsConfig field."""

from .config import AbsConfig


def run(args):
    return AbsConfig(alpha=args.alpha, beta=args.beta)
