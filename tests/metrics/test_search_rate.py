"""Tests for search-rate measurement."""

import pytest

from repro.abs.config import AbsConfig
from repro.metrics.search_rate import (
    RateMeasurement,
    measure_engine_rate,
    measure_solver_rate,
)
from repro.qubo import QuboMatrix


class TestRateMeasurement:
    def test_rate_arithmetic(self):
        m = RateMeasurement(evaluated=1000, elapsed=2.0, n_blocks=4, n=10)
        assert m.rate == 500.0
        assert m.flips_per_second == 50.0

    def test_zero_elapsed(self):
        m = RateMeasurement(evaluated=10, elapsed=0.0, n_blocks=1, n=4)
        assert m.rate == 0.0


class TestMeasureEngineRate:
    def test_counts_only_measured_steps(self):
        q = QuboMatrix.random(64, seed=0)
        m = measure_engine_rate(q, n_blocks=4, steps=50, warmup_steps=10)
        assert m.evaluated == 4 * 50 * 64  # warmup excluded
        assert m.rate > 0
        assert m.n == 64

    def test_no_warmup(self):
        q = QuboMatrix.random(32, seed=1)
        m = measure_engine_rate(q, n_blocks=2, steps=20, warmup_steps=0)
        assert m.evaluated == 2 * 20 * 32

    def test_validation(self):
        q = QuboMatrix.random(32, seed=1)
        with pytest.raises(ValueError):
            measure_engine_rate(q, 2, steps=0)
        with pytest.raises(ValueError):
            measure_engine_rate(q, 2, steps=5, warmup_steps=-1)

    def test_more_blocks_more_evaluations(self):
        q = QuboMatrix.random(64, seed=2)
        m1 = measure_engine_rate(q, 1, steps=30)
        m8 = measure_engine_rate(q, 8, steps=30)
        assert m8.evaluated == 8 * m1.evaluated


class TestMeasureSolverRate:
    def test_sync_mode(self):
        q = QuboMatrix.random(32, seed=3)
        cfg = AbsConfig(max_rounds=4, blocks_per_gpu=4, seed=0)
        m = measure_solver_rate(q, cfg, mode="sync")
        assert m.evaluated > 0
        assert m.rate > 0
        assert m.n_blocks == cfg.total_blocks
