"""Energy-landscape analysis: why some QUBO families are hard.

§4.2 of the paper observes that instance hardness varies sharply by
application — random dense instances are easy, weighted Max-Cut is
harder, TSP QUBOs are hard.  These estimators turn that observation
into measurable landscape properties:

- :func:`random_walk_autocorrelation` — the classic ruggedness measure:
  the autocorrelation of energies along a random bit-flip walk, and the
  derived correlation length ``τ = −1 / ln ρ(1)`` (larger = smoother).
- :func:`local_minimum_fraction` — how often a uniform random solution
  is already a 1-flip local minimum (multimodality proxy).
- :func:`fitness_distance_correlation` — correlation between energy and
  Hamming distance to a reference (ideally optimal) solution; values
  near 1 mean the landscape guides search toward the reference.

All estimators run on the incremental delta machinery, so they cost
O(samples · n) (or O(samples · degree) sparse), not O(samples · n²).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.qubo.energy import delta_vector, energy, weights_size
from repro.qubo.state import SearchState
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_bit_vector


@dataclass(frozen=True)
class AutocorrelationResult:
    """Random-walk autocorrelation estimate."""

    rho: np.ndarray          # ρ(0..max_lag)
    correlation_length: float

    @property
    def rho1(self) -> float:
        """Lag-1 autocorrelation (the ruggedness headline number)."""
        return float(self.rho[1]) if len(self.rho) > 1 else float("nan")


def random_walk_autocorrelation(
    weights,
    *,
    steps: int = 2000,
    max_lag: int = 32,
    seed: SeedLike = 0,
) -> AutocorrelationResult:
    """Estimate energy autocorrelation along a uniform random flip walk.

    A smoother landscape keeps nearby solutions' energies similar, so
    ``ρ(1) → 1`` and the correlation length grows; rugged landscapes
    decorrelate quickly.
    """
    if steps <= max_lag + 1:
        raise ValueError(f"steps ({steps}) must exceed max_lag + 1 ({max_lag + 1})")
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1, got {max_lag}")
    rng = as_generator(seed)
    n = weights_size(weights)
    state = SearchState.from_bits(
        weights, rng.integers(0, 2, n).astype(np.uint8)
    )
    energies = np.empty(steps, dtype=np.float64)
    for t in range(steps):
        state.flip(int(rng.integers(n)))
        energies[t] = state.energy
    centered = energies - energies.mean()
    var = float(centered @ centered)
    if var == 0:
        rho = np.ones(max_lag + 1)
    else:
        rho = np.empty(max_lag + 1)
        rho[0] = 1.0
        for lag in range(1, max_lag + 1):
            rho[lag] = float(centered[:-lag] @ centered[lag:]) / var
    r1 = rho[1]
    if 0 < r1 < 1:
        corr_len = -1.0 / math.log(r1)
    elif r1 >= 1:
        corr_len = math.inf
    else:
        corr_len = 0.0
    return AutocorrelationResult(rho=rho, correlation_length=corr_len)


def local_minimum_fraction(
    weights, *, samples: int = 200, seed: SeedLike = 0
) -> float:
    """Fraction of uniform random solutions that are 1-flip minima.

    A solution is a local minimum when every ``Δ_k ≥ 0``.  High values
    mean the landscape is littered with traps.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rng = as_generator(seed)
    n = weights_size(weights)
    hits = 0
    for _ in range(samples):
        x = rng.integers(0, 2, n).astype(np.uint8)
        if (delta_vector(weights, x) >= 0).all():
            hits += 1
    return hits / samples


def escape_radius(weights, x: np.ndarray, *, max_radius: int = 2) -> int | None:
    """Minimum number of flips that strictly improves on ``x``.

    Returns 1 or 2 when an improving move of that many flips exists,
    ``None`` when no improvement exists within ``max_radius`` (≤ 2
    supported; larger neighbourhoods grow as n^r).

    The 2-flip energy change uses the pair identity
    ``ΔE(i, j) = Δ_i + Δ_j + 2·W_ij·φ(x_i)·φ(x_j)`` (i ≠ j), the
    two-step composition of Eq. (16).

    This is the quantitative form of the paper's TSP-hardness argument:
    valid tours are ≥ 4 flips apart, so descent endpoints on TSP QUBOs
    typically have escape radius > 2, while dense random instances
    escape within 2 flips almost everywhere.
    """
    if max_radius not in (1, 2):
        raise ValueError(f"max_radius must be 1 or 2, got {max_radius}")
    n = weights_size(weights)
    xb = check_bit_vector(x, n, "x")
    d = delta_vector(weights, xb)
    if (d < 0).any():
        return 1
    if max_radius == 1:
        return None
    phi = (1 - 2 * xb.astype(np.int64))
    from repro.qubo.sparse import SparseQubo

    if isinstance(weights, SparseQubo):
        W_off = np.asarray(weights.csr.todense(), dtype=np.int64)
    else:
        from repro.qubo.matrix import as_weight_matrix

        W_off = as_weight_matrix(weights).astype(np.int64, copy=True)
        np.fill_diagonal(W_off, 0)
    pair = d[:, None] + d[None, :] + 2 * W_off * np.outer(phi, phi)
    np.fill_diagonal(pair, 0)  # flipping a bit twice is a no-op
    if (pair < 0).any():
        return 2
    return None


@dataclass(frozen=True)
class DescentStatistics:
    """Endpoint statistics of repeated greedy descents."""

    endpoints: np.ndarray        # energies of every descent endpoint
    distinct_endpoints: int
    endpoint_bits: np.ndarray    # descents × n matrix of endpoint solutions

    @property
    def best(self) -> float:
        """Best endpoint energy."""
        return float(self.endpoints.min())

    @property
    def mean(self) -> float:
        """Mean endpoint energy."""
        return float(self.endpoints.mean())

    @property
    def relative_spread(self) -> float:
        """Endpoint std / |best| — basin-quality dispersion.

        Near 0: every descent lands at a similar energy (a funnel-like
        landscape); large: basins vary wildly (trap-rich landscape —
        the TSP penalty structure is the extreme case).
        """
        b = abs(self.best)
        if b == 0:
            return 0.0
        return float(self.endpoints.std()) / b


def descent_statistics(
    weights, *, descents: int = 50, seed: SeedLike = 0
) -> DescentStatistics:
    """Run greedy 1-flip descents from random starts to local minima.

    Each descent repeatedly flips the most-negative-Δ bit until every
    Δ ≥ 0 (guaranteed to terminate: energy strictly decreases and is
    bounded below on a finite space).
    """
    if descents < 1:
        raise ValueError(f"descents must be >= 1, got {descents}")
    rng = as_generator(seed)
    n = weights_size(weights)
    endpoints = np.empty(descents, dtype=np.float64)
    bits = np.empty((descents, n), dtype=np.uint8)
    for i in range(descents):
        state = SearchState.from_bits(
            weights, rng.integers(0, 2, n).astype(np.uint8)
        )
        while True:
            k = int(np.argmin(state.delta))
            if state.delta[k] >= 0:
                break
            state.flip(k)
        endpoints[i] = state.energy
        bits[i] = state.x
    return DescentStatistics(
        endpoints=endpoints,
        distinct_endpoints=int(np.unique(endpoints).size),
        endpoint_bits=bits,
    )


def fitness_distance_correlation(
    weights,
    reference_x: np.ndarray,
    *,
    samples: int = 200,
    seed: SeedLike = 0,
) -> float:
    """Pearson correlation between E(X) and Hamming(X, reference).

    With an optimal reference, FDC near +1 indicates a globally convex
    ("easy") landscape; near 0, distance carries no energy information.
    """
    if samples < 2:
        raise ValueError(f"samples must be >= 2, got {samples}")
    rng = as_generator(seed)
    n = weights_size(weights)
    ref = check_bit_vector(reference_x, n, "reference_x")
    es = np.empty(samples)
    ds = np.empty(samples)
    for i in range(samples):
        x = rng.integers(0, 2, n).astype(np.uint8)
        es[i] = energy(weights, x)
        ds[i] = int(np.count_nonzero(x ^ ref))
    if es.std() == 0 or ds.std() == 0:
        return 0.0
    return float(np.corrcoef(es, ds)[0, 1])
