"""Failure-injection tests for the multi-process solver."""

import numpy as np
import pytest

import repro.abs.solver as solver_mod
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.abs.buffers import SharedWeights
from repro.qubo import QuboMatrix

pytestmark = [pytest.mark.process, pytest.mark.timeout(60)]


class TestWorkerDeath:
    def test_all_workers_dying_raises(self, monkeypatch):
        """If every device process exits without producing results, the
        host must fail loudly instead of spinning forever.

        ``max_worker_restarts=0`` keeps the test fast; the default
        budget is covered below."""

        def _suicidal_worker(*args, **kwargs):
            raise SystemExit(1)

        monkeypatch.setattr(solver_mod, "_worker_main", _suicidal_worker)
        q = QuboMatrix.random(16, seed=0)
        cfg = AbsConfig(
            blocks_per_gpu=4,
            local_steps=4,
            max_rounds=5,
            max_worker_restarts=0,
            seed=1,
        )
        with pytest.raises(RuntimeError, match="workers died"):
            AdaptiveBulkSearch(q, cfg).solve("process")

    def test_restart_budget_spent_before_giving_up(self, monkeypatch):
        """With a restart budget, a persistently crashing worker is
        retried that many times before the run fails."""

        def _suicidal_worker(*args, **kwargs):
            raise SystemExit(1)

        monkeypatch.setattr(solver_mod, "_worker_main", _suicidal_worker)
        q = QuboMatrix.random(16, seed=0)
        cfg = AbsConfig(
            blocks_per_gpu=4,
            local_steps=4,
            max_rounds=5,
            max_worker_restarts=2,
            seed=1,
        )
        with pytest.raises(RuntimeError, match="after 2 restarts"):
            AdaptiveBulkSearch(q, cfg).solve("process")

    def test_shared_memory_cleaned_after_worker_death(self, monkeypatch):
        import glob

        def _suicidal_worker(*args, **kwargs):
            raise SystemExit(1)

        monkeypatch.setattr(solver_mod, "_worker_main", _suicidal_worker)
        before = set(glob.glob("/dev/shm/*"))
        q = QuboMatrix.random(16, seed=0)
        cfg = AbsConfig(
            blocks_per_gpu=4,
            local_steps=4,
            max_rounds=5,
            max_worker_restarts=0,
            seed=1,
        )
        with pytest.raises(RuntimeError):
            AdaptiveBulkSearch(q, cfg).solve("process")
        after = set(glob.glob("/dev/shm/*"))
        assert after <= before


class TestSharedWeightsFailures:
    def test_attach_to_missing_segment(self):
        with pytest.raises(FileNotFoundError):
            SharedWeights.attach(("nonexistent-segment-xyz", (2, 2), "int64"))

    def test_attach_after_unlink(self):
        owner = SharedWeights.create(np.zeros((2, 2), dtype=np.int64))
        desc = owner.descriptor
        owner.unlink()
        with pytest.raises(FileNotFoundError):
            SharedWeights.attach(desc)


class TestBadInputsToSolver:
    def test_asymmetric_weights_rejected_at_construction(self):
        W = np.array([[0, 1], [2, 0]])
        with pytest.raises(ValueError):
            AdaptiveBulkSearch(QuboMatrix(W), AbsConfig(max_rounds=1))

    def test_float_ndarray_rejected(self):
        with pytest.raises(TypeError):
            AdaptiveBulkSearch(np.eye(4), AbsConfig(max_rounds=1))
