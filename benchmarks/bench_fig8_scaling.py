"""Figure 8 — search-rate scaling with the number of GPUs (§4.3).

Two curves are produced:

- **modeled** — the calibrated throughput model, which is *exactly*
  linear in GPU count (each device runs independent blocks; the only
  coupling is the asynchronous host, off the critical path);
- **measured** — the multiprocessing solver run with 1–4 worker
  processes (each worker = one simulated GPU).

The measured curve is linear only when the host machine has at least
one core per worker.  On a single-core box (such as most CI runners)
workers time-share one core and the measured aggregate stays flat —
the bench detects the core count and reports which regime applies
rather than asserting a slope it cannot exhibit.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import FULL
from repro.abs import AbsConfig
from repro.gpusim import calibrated_model
from repro.metrics.search_rate import measure_solver_rate
from repro.paperdata import FIG8_GPUS
from repro.problems.random_qubo import random_qubo
from repro.utils.tables import Table

_N = 512
_BUDGET_S = 3.0 if FULL else 1.2


def test_fig8_scaling(benchmark, report, bench_record):
    model = calibrated_model()
    cores = os.cpu_count() or 1
    qubo = random_qubo(_N, seed=_N)

    table = Table(
        ["GPUs", "modeled rate (T/s)", "modeled speedup", "measured rate (/s)", "measured speedup"],
        title="Figure 8 — search-rate scaling with GPU count",
    )
    base_model = model.search_rate(1024, 16, 1)
    measured = {}
    for g in FIG8_GPUS:
        cfg = AbsConfig(
            n_gpus=g, blocks_per_gpu=16, local_steps=64,
            time_limit=_BUDGET_S, seed=10 + g,
        )
        m = measure_solver_rate(qubo, cfg, mode="process")
        measured[g] = m.rate
        bench_record(
            f"gpus={g}",
            measured_rate=m.rate,
            modeled_rate=model.search_rate(1024, 16, g),
            evaluated=m.evaluated,
            elapsed_s=m.elapsed,
        )
        table.add_row(
            [
                g,
                model.search_rate(1024, 16, g) / 1e12,
                f"{model.search_rate(1024, 16, g) / base_model:.2f}x",
                f"{m.rate:.3g}",
                f"{m.rate / measured[1]:.2f}x",
            ]
        )

    regime = (
        f"host has {cores} core(s) for 4 workers — measured curve is "
        + ("expected to be ~linear" if cores >= 4 else "flat (time-shared core); the modeled curve carries the Figure 8 claim")
    )
    report("Figure 8 scaling", table.render() + "\n\n" + regime)

    # The model is exactly linear — Figure 8's claim.
    for g in FIG8_GPUS:
        assert model.search_rate(1024, 16, g) == pytest.approx(g * base_model)
    # Measured rates must at least not collapse when adding workers.
    assert measured[max(FIG8_GPUS)] > 0.5 * measured[1]

    cfg = AbsConfig(n_gpus=1, blocks_per_gpu=16, local_steps=64, max_rounds=2, seed=1)
    from repro.abs import AdaptiveBulkSearch

    benchmark(lambda: AdaptiveBulkSearch(qubo, cfg).solve("sync"))
