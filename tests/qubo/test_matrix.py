"""Tests for QuboMatrix construction and validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.qubo.matrix import (
    WEIGHT16_MAX,
    WEIGHT16_MIN,
    QuboMatrix,
    as_weight_matrix,
)


class TestConstruction:
    def test_basic(self):
        W = np.array([[1, 2], [2, 3]])
        q = QuboMatrix(W)
        assert q.n == 2
        assert np.array_equal(q.W, W)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            QuboMatrix(np.zeros((2, 3), dtype=int))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            QuboMatrix(np.array([[0, 1], [2, 0]]))

    def test_rejects_floats(self):
        with pytest.raises(TypeError, match="integer"):
            QuboMatrix(np.eye(3))

    def test_stored_array_is_readonly(self):
        q = QuboMatrix(np.array([[1]]))
        with pytest.raises(ValueError):
            q.W[0, 0] = 5

    def test_copy_isolates_source(self):
        src = np.array([[1, 0], [0, 1]])
        q = QuboMatrix(src)
        src[0, 0] = 99
        assert q.W[0, 0] == 1

    def test_default_name(self):
        assert QuboMatrix(np.zeros((3, 3), dtype=int)).name == "qubo-3"

    def test_len(self):
        assert len(QuboMatrix.zeros(5)) == 5

    def test_repr_mentions_size(self):
        assert "n=4" in repr(QuboMatrix.zeros(4))


class TestEquality:
    def test_equal_matrices(self):
        a = QuboMatrix.random(6, seed=1)
        b = QuboMatrix(a.W)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal(self):
        assert QuboMatrix.random(6, seed=1) != QuboMatrix.random(6, seed=2)

    def test_non_matrix_comparison(self):
        assert QuboMatrix.zeros(2) != "not a matrix"


class TestZeros:
    def test_zero_matrix(self):
        q = QuboMatrix.zeros(4)
        assert q.n == 4
        assert not q.W.any()
        assert q.density() == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            QuboMatrix.zeros(-1)

    def test_empty(self):
        q = QuboMatrix.zeros(0)
        assert q.n == 0
        assert q.density() == 0.0


class TestRandom:
    def test_symmetry(self):
        q = QuboMatrix.random(20, seed=0)
        assert np.array_equal(q.W, q.W.T)

    def test_default_range_is_16bit(self):
        q = QuboMatrix.random(50, seed=3)
        assert q.W.min() >= WEIGHT16_MIN
        assert q.W.max() <= WEIGHT16_MAX
        assert q.is_weight16()

    def test_custom_range(self):
        q = QuboMatrix.random(30, seed=1, low=-2, high=2)
        assert set(np.unique(q.W)) <= {-2, -1, 0, 1, 2}

    def test_deterministic_by_seed(self):
        assert QuboMatrix.random(10, seed=9) == QuboMatrix.random(10, seed=9)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError, match="low"):
            QuboMatrix.random(4, seed=0, low=5, high=1)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            QuboMatrix.random(-2)


class TestFromTerms:
    def test_linear_only(self):
        q = QuboMatrix.from_terms(3, linear={0: 5, 2: -1})
        assert q.W[0, 0] == 5 and q.W[2, 2] == -1 and q.W[1, 1] == 0
        assert q.energy_scale() == 1

    def test_even_quadratic_no_scaling(self):
        q = QuboMatrix.from_terms(3, quadratic={(0, 1): 4})
        assert q.W[0, 1] == 2 and q.W[1, 0] == 2
        assert q.energy_scale() == 1

    def test_odd_quadratic_doubles(self):
        q = QuboMatrix.from_terms(3, linear={0: 1}, quadratic={(0, 1): 3})
        assert q.energy_scale() == 2
        assert q.W[0, 1] == 3  # 2·3/2
        assert q.W[0, 0] == 2  # doubled linear

    def test_diagonal_quadratic_rejected(self):
        with pytest.raises(ValueError, match="diagonal"):
            QuboMatrix.from_terms(3, quadratic={(1, 1): 2})

    def test_out_of_range_indices(self):
        with pytest.raises(IndexError):
            QuboMatrix.from_terms(2, linear={5: 1})
        with pytest.raises(IndexError):
            QuboMatrix.from_terms(2, quadratic={(0, 9): 2})

    def test_symmetric_accumulation(self):
        q = QuboMatrix.from_terms(3, quadratic={(0, 1): 2, (1, 0): 2})
        assert q.W[0, 1] == 2  # both keys accumulate into the same pair

    @given(st.integers(0, 10), st.integers(-50, 50))
    def test_energy_scale_parse_robust(self, n, c):
        q = QuboMatrix.from_terms(max(n, 1), linear={0: c})
        assert q.energy_scale() in (1, 2)


class TestWeightBits:
    def test_zero_matrix_is_one_bit(self):
        assert QuboMatrix.zeros(3).weight_bits() == 1

    def test_boundary_values(self):
        q = QuboMatrix(np.array([[WEIGHT16_MAX, 0], [0, WEIGHT16_MIN]]))
        assert q.weight_bits() == 16
        assert q.is_weight16()

    def test_17_bit(self):
        q = QuboMatrix(np.array([[WEIGHT16_MAX + 1]]))
        assert q.weight_bits() == 17
        assert not q.is_weight16()

    def test_empty(self):
        assert QuboMatrix.zeros(0).weight_bits() == 1


class TestAsWeightMatrix:
    def test_from_qubo_matrix_is_view(self):
        q = QuboMatrix.random(5, seed=1)
        assert as_weight_matrix(q) is q.W

    def test_from_ndarray(self):
        W = np.zeros((3, 3), dtype=np.int64)
        assert as_weight_matrix(W) is W

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            as_weight_matrix(np.zeros((2, 3), dtype=int))

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            as_weight_matrix(np.zeros((2, 2)))

    def test_density(self):
        q = QuboMatrix(np.array([[1, 0], [0, 0]]))
        assert q.density() == 0.25
