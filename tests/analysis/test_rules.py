"""Per-rule fixture coverage for the static analyzer.

Each rule gets one passing and one failing fixture module (under
``tests/analysis/fixtures/``), driven through the analyzer API; the
failing side also pins rule ids and line numbers so findings stay
actionable, and the noqa behavior is exercised both rule-scoped and
blanket.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, get_rule, render_findings
from repro.analysis.core import Finding

pytestmark = pytest.mark.analysis

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(rule_id: str, *relpaths: str) -> list[Finding]:
    paths = [FIXTURES / rel for rel in relpaths]
    return analyze_paths(paths, rules=[get_rule(rule_id)], root=FIXTURES)


# -- telemetry-consistency -------------------------------------------------

def test_telemetry_clean_fixture_passes():
    assert run_rule("telemetry-consistency", "telemetry_ok") == []


def test_telemetry_flags_drift_both_ways():
    findings = run_rule("telemetry-consistency", "telemetry_bad")
    messages = [f.message for f in findings]
    assert any("'undeclared.event' is not declared" in m for m in messages)
    assert any("'undeclared.count' is not declared" in m for m in messages)
    assert any("'other.*.ns' does not match" in m for m in messages)
    assert any("event name is an f-string" in m for m in messages)
    # dead declarations are located in the fixture schema itself
    dead = [f for f in findings if "dead." in f.message]
    assert {f.path for f in dead} == {"telemetry_bad/schema.py"}
    assert {f.message.split("'")[1] for f in dead} == {
        "dead.event", "dead.count", "dead.*.ns",
    }
    assert all(f.line > 0 for f in findings)


def test_telemetry_single_file_uses_installed_schema():
    # No schema module in the analyzed set: declarations fall back to
    # repro.telemetry.schema and dead-declaration checks are skipped.
    findings = run_rule("telemetry-consistency", "telemetry_bad/app.py")
    assert any("undeclared.event" in f.message for f in findings)
    assert not any("has no emit site" in f.message for f in findings)


# -- rng-discipline --------------------------------------------------------

def test_rng_clean_fixture_passes():
    assert run_rule("rng-discipline", "rng/repro/ga/good.py") == []


def test_rng_flags_every_global_rng_form():
    findings = run_rule("rng-discipline", "rng/repro/ga/bad.py")
    assert len(findings) == 5
    assert {f.rule for f in findings} == {"rng-discipline"}
    joined = " ".join(f.message for f in findings)
    assert "np.random.seed" in joined
    assert "np.random.rand" in joined
    assert "stdlib RNG 'random.random'" in joined
    assert "default_rng() without a seed" in joined
    assert "import of 'random'" in joined


def test_rng_path_filter_skips_unrestricted_trees(tmp_path):
    # The same violations outside repro/{search,ga,abs,backends,gpusim}
    # are not this rule's business.
    mod = tmp_path / "scratch.py"
    mod.write_text("import numpy as np\nx = np.random.rand(3)\n")
    assert analyze_paths([mod], rules=[get_rule("rng-discipline")]) == []


# -- config-plumbing -------------------------------------------------------

def test_config_clean_fixture_passes():
    assert run_rule("config-plumbing", "config_ok") == []


def test_config_flags_unplumbed_field_in_both_layers():
    findings = run_rule("config-plumbing", "config_bad")
    assert len(findings) == 2
    assert all("AbsConfig.gamma" in f.message for f in findings)
    assert all(f.path == "config_bad/config.py" for f in findings)
    assert {("api.solve()" in f.message, "CLI" in f.message) for f in findings} == {
        (True, False), (False, True),
    }


# -- kernel-purity ---------------------------------------------------------

def test_kernel_clean_fixture_passes():
    assert run_rule("kernel-purity", "kernel/repro/backends/good_backend.py") == []


def test_kernel_flags_impurities():
    findings = run_rule("kernel-purity", "kernel/repro/backends/bad_backend.py")
    joined = " ".join(f.message for f in findings)
    assert "imports from 'repro.telemetry'" in joined
    assert "telemetry emitted from a kernel backend" in joined
    assert "closes over mutable module global '_CACHE'" in joined
    assert "rebinds outer state via global" in joined


def test_kernel_flags_hot_path_process_work():
    findings = run_rule("kernel-purity", "kernel/repro/backends/bad_backend.py")
    hot = [f.message for f in findings if "hot kernel" in f.message]
    joined = " ".join(hot)
    assert "'run_local_steps' calls 'subprocess.run'" in joined
    assert "'run_local_steps' calls 'warnings.warn'" in joined
    assert "'run_local_steps' calls 'print'" in joined
    # prepare_dense in the clean fixture does the same work legally.
    assert run_rule("kernel-purity", "kernel/repro/backends/good_backend.py") == []


# -- shm-protocol ----------------------------------------------------------

def test_shm_clean_fixture_passes():
    assert run_rule("shm-protocol", "shm_ok") == []


def test_shm_flags_ordering_and_out_of_module_access():
    findings = run_rule("shm-protocol", "shm_bad")
    joined = " ".join(f"{f.path}:{f.line} {f.message}" for f in findings)
    assert "TornMailbox.publish" in joined and "torn record" in joined
    assert "TornMailbox.fetch" in joined and "re-check" in joined
    assert "TornRing.consume" in joined and "released the slot" in joined
    assert "raw SharedMemory.buf indexing" in joined
    assert "offset ndarray view" in joined
    assert "_header word accessed outside" in joined


def test_tcp_layout_confined_to_transport_module():
    findings = run_rule("shm-protocol", "tcp_bad")
    joined = " ".join(f"{f.path}:{f.line} {f.message}" for f in findings)
    assert "FRAME_HEADER" in joined and "imported outside" in joined
    assert "_RESULT_HEAD" in joined and "referenced outside" in joined


def test_tcp_codec_surface_is_sanctioned():
    assert run_rule("shm-protocol", "tcp_ok") == []


# -- framework behavior ----------------------------------------------------

def test_noqa_rule_scoped_suppression():
    assert run_rule("rng-discipline", "rng/repro/ga/suppressed.py") == []


def test_noqa_blanket_and_mismatched_rule(tmp_path):
    repro_dir = tmp_path / "repro" / "ga"
    repro_dir.mkdir(parents=True)
    mod = repro_dir / "mod.py"
    mod.write_text(
        "import numpy as np\n"
        "a = np.random.rand(2)  # repro: noqa\n"
        "b = np.random.rand(2)  # repro: noqa[telemetry-consistency]\n"
    )
    findings = analyze_paths([mod], rules=[get_rule("rng-discipline")])
    # blanket noqa silences line 2; a noqa naming another rule does not
    # excuse line 3
    assert [f.line for f in findings] == [3]


def test_unknown_rule_raises():
    with pytest.raises(KeyError, match="unknown rule"):
        get_rule("no-such-rule")


def test_parse_error_is_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = analyze_paths([bad])
    assert len(findings) == 1
    assert findings[0].rule == "parse-error"


def test_render_formats():
    finding = Finding(path="a.py", line=3, rule="rng-discipline", message="boom")
    text = render_findings([finding], "text")
    assert "a.py:3: error: [rng-discipline] boom" in text
    payload = json.loads(render_findings([finding], "json"))
    assert payload["count"] == 1
    assert payload["findings"][0]["line"] == 3
