"""Fixture api: solve() forgets gamma."""

from .config import AbsConfig


def solve(weights, *, alpha=1):
    return AbsConfig(alpha=alpha)
