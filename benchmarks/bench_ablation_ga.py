"""Ablation — the host GA's contribution (§2.2).

Compares, at an equal wall-clock budget:

- **full ABS** — GA target generation (mutation + crossover + copy);
- **copy-only** — targets are pool members verbatim (local search with
  restarts from elites, no recombination);
- **random restarts** — targets are fresh random vectors (pure
  multi-start, the no-GA baseline).

Shape: the GA-driven variants should match or beat random restarts —
recombining good solutions focuses the bulk searches on promising
basins, which is the point of running the GA on the host.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.ga.host import GaConfig
from repro.problems import maxcut_to_qubo, synthetic_gset
from repro.utils.tables import Table

_BUDGET_S = 6.0 if FULL else 2.0


def _config(ga: GaConfig, seed: int) -> AbsConfig:
    return AbsConfig(
        blocks_per_gpu=32,
        local_steps=64,
        pool_capacity=48,
        ga=ga,
        time_limit=_BUDGET_S,
        seed=seed,
    )


def test_ablation_ga_contribution(benchmark, report):
    qubo = maxcut_to_qubo(synthetic_gset("G1"), name="G1")

    variants = {
        "full GA (mutate+crossover+copy)": GaConfig(),
        "mutation only": GaConfig(p_mutation=1.0, p_crossover=0.0),
        "crossover only": GaConfig(p_mutation=0.0, p_crossover=1.0),
        "copy only (elite restarts)": GaConfig(p_mutation=0.0, p_crossover=0.0),
    }
    table = Table(
        ["host strategy", "best cut", "evaluated"],
        title=f"GA ablation on the G1 analogue ({_BUDGET_S:.0f} s budget)",
    )
    cuts = {}
    for name, ga in variants.items():
        best = None
        evaluated = 0
        for seed in (1, 2):
            res = AdaptiveBulkSearch(qubo, _config(ga, seed)).solve("sync")
            cut = -res.best_energy
            evaluated += res.evaluated
            best = cut if best is None else max(best, cut)
        cuts[name] = best
        table.add_row([name, best, f"{evaluated:.3g}"])

    report(
        "Ablation GA",
        table.render()
        + "\n\nRecombination (mutation/crossover) should match or beat "
        "pure elite restarts at equal budget.",
    )

    full = cuts["full GA (mutate+crossover+copy)"]
    copy_only = cuts["copy only (elite restarts)"]
    # Weak-form assertion (stochastic at this budget): the full GA is
    # within 1 % of the best variant and not dominated by copy-only.
    assert full >= 0.99 * max(cuts.values())
    assert full >= 0.99 * copy_only

    benchmark(
        lambda: AdaptiveBulkSearch(
            qubo,
            AbsConfig(
                blocks_per_gpu=32, local_steps=64, pool_capacity=48,
                max_rounds=1, seed=9,
            ),
        ).solve("sync")
    )
