"""The QUBO weight matrix.

An instance of a QUBO problem is an ``n × n`` symmetric matrix of integer
weights ``W`` (paper §1, Eq. 1).  The paper's GPU implementation supports
16-bit weights and up to 32 k bits; we validate the former as an opt-in
check (:meth:`QuboMatrix.weight_bits`) but store weights in whatever
integer width they need, because derived formulations (Max-Cut's diagonal
``-degree`` terms, TSP penalties) can exceed 16 bits for large inputs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Tuple, Union

import numpy as np

from repro.utils.rng import SeedLike, as_generator

#: Inclusive weight range for the paper's 16-bit synthetic instances.
WEIGHT16_MIN = -(2**15)
WEIGHT16_MAX = 2**15 - 1

WeightsLike = Union["QuboMatrix", np.ndarray, Iterable[Iterable[int]]]


def as_weight_matrix(weights: WeightsLike) -> np.ndarray:
    """Return the underlying ndarray of ``weights`` without copying.

    Accepts a :class:`QuboMatrix` or anything convertible to a square
    integer ndarray.  This is the permissive accessor used by hot-path
    functions; full validation lives in :class:`QuboMatrix`.
    """
    if isinstance(weights, QuboMatrix):
        return weights.W
    arr = np.asarray(weights)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"weight matrix must be square, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"weights must be integers, got dtype {arr.dtype}")
    return arr


class QuboMatrix:
    """A validated symmetric integer QUBO weight matrix.

    Parameters
    ----------
    weights:
        Square array-like of integers with ``W[i, j] == W[j, i]``.
    copy:
        Copy the input (default).  Pass ``False`` to adopt an existing
        array; the matrix is then frozen via ``writeable=False``.
    check:
        Validate squareness/symmetry/dtype (default).  Disable only for
        matrices produced by trusted internal code.

    Notes
    -----
    The stored array is made read-only, so a :class:`QuboMatrix` can be
    shared freely between the host GA and all simulated device workers.
    """

    __slots__ = ("_W", "name")

    def __init__(
        self,
        weights: WeightsLike,
        *,
        copy: bool = True,
        check: bool = True,
        name: str | None = None,
    ) -> None:
        arr = np.array(weights, copy=copy) if copy else np.asarray(weights)
        if check:
            if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
                raise ValueError(
                    f"weight matrix must be square, got shape {arr.shape}"
                )
            if not np.issubdtype(arr.dtype, np.integer):
                raise TypeError(f"weights must be integers, got dtype {arr.dtype}")
            if arr.size and not np.array_equal(arr, arr.T):
                raise ValueError("weight matrix must be symmetric (W[i,j] == W[j,i])")
        arr.setflags(write=False)
        self._W = arr
        self.name = name or f"qubo-{arr.shape[0]}"

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def W(self) -> np.ndarray:
        """The read-only ``n × n`` weight array."""
        return self._W

    @property
    def n(self) -> int:
        """Number of bits (spins) in the problem."""
        return self._W.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Integer dtype of the stored weights."""
        return self._W.dtype

    @property
    def nbytes(self) -> int:
        """Memory footprint of the weight array in bytes."""
        return self._W.nbytes

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"QuboMatrix(name={self.name!r}, n={self.n}, dtype={self.dtype}, "
            f"weight_bits={self.weight_bits()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuboMatrix):
            return NotImplemented
        return self.n == other.n and np.array_equal(self._W, other._W)

    def __hash__(self) -> int:  # needed because __eq__ is defined
        return hash((self.n, self._W.tobytes()))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n: int, dtype: np.dtype = np.int32) -> "QuboMatrix":
        """The all-zero problem on ``n`` bits (every X is optimal)."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return cls(np.zeros((n, n), dtype=dtype), copy=False, check=False)

    @classmethod
    def random(
        cls,
        n: int,
        seed: SeedLike = None,
        *,
        low: int = WEIGHT16_MIN,
        high: int = WEIGHT16_MAX,
        dtype: np.dtype = np.int32,
        name: str | None = None,
    ) -> "QuboMatrix":
        """A dense symmetric random matrix with weights in ``[low, high]``.

        With the default bounds this matches the paper's synthetic random
        benchmark (§4.1.3): every weight uniform in 16 bits.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if low > high:
            raise ValueError(f"low ({low}) must not exceed high ({high})")
        rng = as_generator(seed)
        upper = rng.integers(low, high + 1, size=(n, n), dtype=np.int64)
        sym = np.triu(upper) + np.triu(upper, 1).T
        return cls(sym.astype(dtype), copy=False, check=False, name=name)

    @classmethod
    def from_terms(
        cls,
        n: int,
        linear: Mapping[int, int] | None = None,
        quadratic: Mapping[Tuple[int, int], int] | None = None,
        *,
        name: str | None = None,
    ) -> "QuboMatrix":
        """Build from sparse linear/quadratic coefficient dictionaries.

        ``E(X) = Σ linear[i]·x_i + Σ quadratic[(i, j)]·x_i·x_j`` for
        ``i ≠ j``.  Because ``W`` must be symmetric with integer entries,
        each quadratic coefficient ``q`` is split as ``W_ij = W_ji =
        q/2``; if any ``q`` is odd the **entire matrix is doubled** so
        integrality is preserved.  The applied factor is recorded on the
        returned matrix's ``name`` (``"...@x2"``) and reported by
        :meth:`energy_scale`.
        """
        linear = dict(linear or {})
        quadratic = dict(quadratic or {})
        for i in linear:
            if not (0 <= i < n):
                raise IndexError(f"linear index {i} out of range [0, {n})")
        for i, j in quadratic:
            if not (0 <= i < n and 0 <= j < n):
                raise IndexError(f"quadratic index ({i}, {j}) out of range [0, {n})")
            if i == j:
                raise ValueError(
                    f"quadratic key ({i}, {j}) is diagonal; use `linear` for x_i "
                    "(x_i² == x_i for bits)"
                )
        scale = 2 if any(q % 2 for q in quadratic.values()) else 1
        W = np.zeros((n, n), dtype=np.int64)
        for i, c in linear.items():
            W[i, i] += scale * c
        for (i, j), q in quadratic.items():
            half = scale * q // 2
            W[i, j] += half
            W[j, i] += half
        base = name or f"qubo-{n}"
        if scale != 1:
            base = f"{base}@x{scale}"
        return cls(W, copy=False, check=False, name=base)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def energy_scale(self) -> int:
        """Scale factor applied by :meth:`from_terms` (parsed from name)."""
        if "@x" in self.name:
            try:
                return int(self.name.rsplit("@x", 1)[1])
            except ValueError:
                return 1
        return 1

    def weight_bits(self) -> int:
        """Smallest signed-integer bit width holding every weight.

        The paper's implementation supports 16-bit weights; instances
        answering ``<= 16`` here fit that hardware profile.
        """
        if self.n == 0:
            return 1
        lo = int(self._W.min())
        hi = int(self._W.max())
        bits = 1
        while not (-(2 ** (bits - 1)) <= lo and hi <= 2 ** (bits - 1) - 1):
            bits += 1
        return bits

    def is_weight16(self) -> bool:
        """Whether all weights fit the paper's 16-bit profile."""
        return self.weight_bits() <= 16

    def density(self) -> float:
        """Fraction of nonzero entries (diagonal included)."""
        if self.n == 0:
            return 0.0
        return float(np.count_nonzero(self._W)) / float(self.n * self.n)
