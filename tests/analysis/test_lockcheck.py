"""The lock-discipline rule: fixture-driven findings, clean code,
``--fail-on`` exit-code semantics, and the JSON schema version."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    FINDING_SCHEMA_VERSION,
    analyze_paths,
    severity_rank,
)

pytestmark = pytest.mark.analysis

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "lock_bad"
OK = FIXTURES / "lock_ok"


def lock_findings(path):
    return [
        f for f in analyze_paths([path])
        if f.rule == "lock-discipline"
    ]


class TestBadFixture:
    @pytest.fixture(scope="class")
    def findings(self):
        return lock_findings(BAD)

    def test_finding_count(self, findings):
        assert len(findings) == 7

    @pytest.mark.parametrize(
        ("line", "severity", "needle"),
        [
            (7, "note", "ghost"),                 # stale GUARDED_BY entry
            (14, "warning", "_missing"),          # guard names a non-lock
            (18, "error", "_jobs"),               # unguarded write
            (23, "error", "stats"),               # unguarded GUARDED_BY read
            (28, "error", "while"),               # wait outside predicate loop
            (31, "error", "notify_all"),          # notify without the lock
            (35, "error", "lock-order cycle"),    # inconsistent nesting
        ],
    )
    def test_expected_finding(self, findings, line, severity, needle):
        match = [f for f in findings if f.line == line]
        assert match, f"no finding at line {line}: {findings}"
        f = match[0]
        assert f.severity == severity, f.format()
        assert needle in f.message, f.format()

    def test_severity_spread(self, findings):
        by_sev = sorted(f.severity for f in findings)
        assert by_sev == ["error"] * 5 + ["note", "warning"]


def test_clean_fixture_has_no_findings():
    assert lock_findings(OK) == []


def test_noqa_suppresses_lock_findings(tmp_path):
    src = (BAD / "service.py").read_text().replace(
        "self._jobs[job_id] = job  # unguarded write",
        "self._jobs[job_id] = job  # repro: noqa[lock-discipline]",
    )
    (tmp_path / "service.py").write_text(src)
    lines = {f.line for f in lock_findings(tmp_path)}
    assert 18 not in lines
    assert len(lines) == 6


# -- CLI: --fail-on thresholds and the JSON schema --------------------------

def run_analyze(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", *args],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=Path(__file__).resolve().parents[2],
    )


def test_severity_rank_ordering():
    assert severity_rank("note") < severity_rank("warning") < severity_rank("error")
    # unknown severities gate as errors, never slip through
    assert severity_rank("bogus") == severity_rank("error")


class TestFailOn:
    def test_default_fails_on_note(self):
        proc = run_analyze(str(BAD), "--rule", "lock-discipline")
        assert proc.returncode == 1

    def test_fail_on_error_still_fails_with_errors(self):
        proc = run_analyze(str(BAD), "--rule", "lock-discipline",
                           "--fail-on", "error")
        assert proc.returncode == 1

    def test_fail_on_error_passes_notes_and_warnings(self, tmp_path):
        # keep only the note + warning producing part of the fixture:
        # everything after __init__ holds the error-level violations
        src = (BAD / "service.py").read_text()
        lines = src.splitlines(keepends=True)
        cut = next(i for i, ln in enumerate(lines) if "def submit" in ln)
        (tmp_path / "service.py").write_text("".join(lines[:cut]))
        only_soft = lock_findings(tmp_path)
        assert {f.severity for f in only_soft} == {"note", "warning"}
        proc = run_analyze(str(tmp_path), "--rule", "lock-discipline",
                           "--fail-on", "error")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        proc = run_analyze(str(tmp_path), "--rule", "lock-discipline",
                           "--fail-on", "warning")
        assert proc.returncode == 1

    def test_fail_on_rejects_unknown_level(self):
        proc = run_analyze(str(BAD), "--fail-on", "fatal")
        assert proc.returncode == 2
        assert "invalid choice" in proc.stderr


def test_json_format_schema():
    proc = run_analyze(str(BAD), "--rule", "lock-discipline",
                       "--format", "json")
    payload = json.loads(proc.stdout)
    assert payload["schema_version"] == FINDING_SCHEMA_VERSION
    assert payload["count"] == 7
    assert len(payload["findings"]) == 7
    f = payload["findings"][0]
    assert set(f) >= {"path", "line", "rule", "message", "severity"}
    assert all(x["rule"] == "lock-discipline" for x in payload["findings"])
