"""Tests for SolveResult bookkeeping."""

import numpy as np
import pytest

from repro.abs.result import SolveResult


def make_result(**overrides):
    base = dict(
        best_x=np.array([1, 0, 1], dtype=np.uint8),
        best_energy=-7,
        elapsed=2.0,
        rounds=4,
        evaluated=1000,
        flips=100,
    )
    base.update(overrides)
    return SolveResult(**base)


class TestSearchRate:
    def test_rate(self):
        assert make_result().search_rate == 500.0

    def test_zero_elapsed(self):
        assert make_result(elapsed=0.0).search_rate == 0.0


class TestSummary:
    def test_contains_key_fields(self):
        s = make_result().summary()
        assert "best=-7" in s
        assert "rounds=4" in s
        assert "gpus=1" in s
        assert "[target reached]" not in s

    def test_target_marker(self):
        s = make_result(reached_target=True).summary()
        assert "[target reached]" in s

    def test_history_default_empty(self):
        assert make_result().history == []

    def test_time_to_target_default_none(self):
        assert make_result().time_to_target is None
