"""Tests for the G-set format and synthetic catalog."""

import networkx as nx
import pytest

from repro.problems.gset import (
    GSET_CATALOG,
    GsetFormatError,
    load_gset,
    save_gset,
    synthetic_gset,
)


class TestFormat:
    def test_roundtrip(self, tmp_path):
        g = synthetic_gset("G1")
        p = tmp_path / "g1.txt"
        save_gset(g, p)
        g2 = load_gset(p)
        assert g2.number_of_nodes() == g.number_of_nodes()
        assert g2.number_of_edges() == g.number_of_edges()
        # Weighted edges preserved.
        for u, v, d in g.edges(data=True):
            assert g2[u][v]["weight"] == d.get("weight", 1)

    def test_one_indexing(self, tmp_path):
        p = tmp_path / "tiny.txt"
        p.write_text("3 2\n1 2 5\n2 3 -1\n")
        g = load_gset(p)
        assert set(g.nodes()) == {0, 1, 2}
        assert g[0][1]["weight"] == 5
        assert g[1][2]["weight"] == -1

    def test_empty_file(self, tmp_path):
        p = tmp_path / "e.txt"
        p.write_text("")
        with pytest.raises(GsetFormatError, match="empty"):
            load_gset(p)

    def test_bad_header(self, tmp_path):
        p = tmp_path / "b.txt"
        p.write_text("3\n")
        with pytest.raises(GsetFormatError, match="header"):
            load_gset(p)

    def test_edge_count_mismatch(self, tmp_path):
        p = tmp_path / "b.txt"
        p.write_text("3 5\n1 2 1\n")
        with pytest.raises(GsetFormatError, match="edges"):
            load_gset(p)

    def test_vertex_out_of_range(self, tmp_path):
        p = tmp_path / "b.txt"
        p.write_text("3 1\n1 9 1\n")
        with pytest.raises(GsetFormatError, match="range"):
            load_gset(p)

    def test_bad_edge_line(self, tmp_path):
        p = tmp_path / "b.txt"
        p.write_text("3 1\n1 2\n")
        with pytest.raises(GsetFormatError, match="u v w"):
            load_gset(p)

    def test_non_integer_header(self, tmp_path):
        p = tmp_path / "b.txt"
        p.write_text("x y\n")
        with pytest.raises(GsetFormatError, match="non-integer"):
            load_gset(p)


class TestCatalog:
    @pytest.mark.parametrize("name", sorted(GSET_CATALOG))
    def test_analogue_matches_spec_size(self, name):
        spec = GSET_CATALOG[name]
        g = synthetic_gset(name)
        assert g.number_of_nodes() == spec.n
        if spec.family == "random":
            assert g.number_of_edges() == spec.n_edges
        else:
            # Planar-like: within 10 % of the target density.
            assert abs(g.number_of_edges() - spec.n_edges) < 0.1 * spec.n_edges

    @pytest.mark.parametrize("name", ["G6", "G27", "G39"])
    def test_weighted_instances_have_negative_edges(self, name):
        g = synthetic_gset(name)
        weights = {d["weight"] for _, _, d in g.edges(data=True)}
        assert weights == {-1, 1}

    @pytest.mark.parametrize("name", ["G1", "G22", "G55", "G70"])
    def test_unweighted_instances(self, name):
        g = synthetic_gset(name)
        assert {d["weight"] for _, _, d in g.edges(data=True)} == {1}

    def test_deterministic(self):
        a, b = synthetic_gset("G22"), synthetic_gset("G22")
        assert set(a.edges()) == set(b.edges())

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="G999"):
            synthetic_gset("G999")

    def test_sizes_match_table_1a(self):
        """Vertex counts match the published Table 1(a) rows."""
        from repro.paperdata import TABLE_1A

        for row in TABLE_1A:
            assert GSET_CATALOG[row.graph].n == row.n
            assert GSET_CATALOG[row.graph].family == row.family
            assert GSET_CATALOG[row.graph].weighted == row.weighted
