"""Shared behavioural tests for the Algorithm 1–4 ladder.

Every local search must: track the best solution correctly, be
reproducible by seed, report consistent counters, and accept the same
interface.  This file runs the whole matrix of those checks.
"""

import numpy as np
import pytest

from repro.qubo import QuboMatrix, energy
from repro.search import (
    BulkLocalSearch,
    DeltaLocalSearch,
    NaiveLocalSearch,
    OneStepLocalSearch,
)
from repro.search.accept import AlwaysAccept

ALGORITHMS = [
    NaiveLocalSearch,
    OneStepLocalSearch,
    DeltaLocalSearch,
    BulkLocalSearch,
]


@pytest.fixture(params=ALGORITHMS, ids=lambda c: c.__name__)
def algorithm(request):
    return request.param()


@pytest.fixture
def problem():
    return QuboMatrix.random(16, seed=2024, low=-50, high=50)


@pytest.fixture
def x0(problem, rng):
    return rng.integers(0, 2, problem.n, dtype=np.uint8)


class TestCommonBehaviour:
    def test_best_energy_matches_best_x(self, algorithm, problem, x0):
        rec = algorithm.run(problem, x0, steps=100, seed=1)
        assert rec.best_energy == energy(problem, rec.best_x)

    def test_final_energy_matches_final_x(self, algorithm, problem, x0):
        rec = algorithm.run(problem, x0, steps=100, seed=1)
        assert rec.final_energy == energy(problem, rec.final_x)

    def test_best_never_worse_than_final(self, algorithm, problem, x0):
        rec = algorithm.run(problem, x0, steps=100, seed=1)
        assert rec.best_energy <= rec.final_energy

    def test_reproducible_by_seed(self, algorithm, problem, x0):
        a = algorithm.run(problem, x0, steps=60, seed=7)
        b = algorithm.run(problem, x0, steps=60, seed=7)
        assert a.best_energy == b.best_energy
        assert np.array_equal(a.final_x, b.final_x)

    def test_zero_steps_allowed(self, algorithm, problem, x0):
        rec = algorithm.run(problem, x0, steps=0, seed=1)
        assert rec.steps == 0
        assert rec.best_energy <= energy(problem, x0)

    def test_negative_steps_rejected(self, algorithm, problem, x0):
        with pytest.raises(ValueError):
            algorithm.run(problem, x0, steps=-1, seed=1)

    def test_history_recorded_on_request(self, algorithm, problem, x0):
        rec = algorithm.run(problem, x0, steps=25, seed=1, record_history=True)
        assert len(rec.history) == 25
        assert all(
            rec.history[i + 1] <= rec.history[i] for i in range(len(rec.history) - 1)
        )
        assert rec.history[-1] == rec.best_energy

    def test_history_empty_by_default(self, algorithm, problem, x0):
        assert algorithm.run(problem, x0, steps=10, seed=1).history == []

    def test_input_not_mutated(self, algorithm, problem, x0):
        snapshot = x0.copy()
        algorithm.run(problem, x0, steps=30, seed=1)
        assert np.array_equal(x0, snapshot)

    def test_counters_positive(self, algorithm, problem, x0):
        rec = algorithm.run(problem, x0, steps=50, seed=1)
        assert rec.evaluated > 0
        assert rec.ops > 0
        assert rec.efficiency > 0


class TestMeasuredEfficiency:
    """Lemmas 1–3 and Theorem 1 as measured facts (forced acceptance
    keeps the op counters deterministic)."""

    def _eff(self, algo, n, steps=200):
        q = QuboMatrix.random(n, seed=n)
        x0 = np.random.default_rng(n).integers(0, 2, n, dtype=np.uint8)
        return algo.run(q, x0, steps, seed=0).efficiency

    def test_naive_is_quadratic(self):
        e64 = self._eff(NaiveLocalSearch(AlwaysAccept()), 64)
        e128 = self._eff(NaiveLocalSearch(AlwaysAccept()), 128)
        assert e128 / e64 == pytest.approx(4.0, rel=0.05)

    def test_onestep_is_linear_for_large_m(self):
        e64 = self._eff(OneStepLocalSearch(AlwaysAccept()), 64, steps=2000)
        e128 = self._eff(OneStepLocalSearch(AlwaysAccept()), 128, steps=2000)
        assert e128 / e64 == pytest.approx(2.0, rel=0.15)

    def test_delta_is_linear(self):
        e64 = self._eff(DeltaLocalSearch(AlwaysAccept()), 64)
        e128 = self._eff(DeltaLocalSearch(AlwaysAccept()), 128)
        assert e128 / e64 == pytest.approx(2.0, rel=0.25)

    def test_bulk_is_constant(self):
        e64 = self._eff(BulkLocalSearch(), 64)
        e256 = self._eff(BulkLocalSearch(), 256)
        assert e64 == pytest.approx(1.0, abs=0.01)
        assert e256 == pytest.approx(1.0, abs=0.01)

    def test_ladder_ordering_at_fixed_size(self):
        """At any fixed n, the ladder strictly improves efficiency."""
        n = 96
        effs = [
            self._eff(NaiveLocalSearch(AlwaysAccept()), n),
            self._eff(OneStepLocalSearch(AlwaysAccept()), n),
            self._eff(DeltaLocalSearch(AlwaysAccept()), n),
            self._eff(BulkLocalSearch(), n),
        ]
        assert effs[0] > effs[1] > effs[2] > effs[3]
