"""Tests for the straight search (Algorithm 5)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.qubo import QuboMatrix, SearchState, energy
from repro.search import straight_search


@pytest.fixture
def problem():
    return QuboMatrix.random(20, seed=555)


class TestTermination:
    def test_ends_exactly_at_target(self, problem, rng):
        state = SearchState.zeros(problem)
        target = rng.integers(0, 2, problem.n, dtype=np.uint8)
        straight_search(state, target)
        assert np.array_equal(state.x, target)
        state.validate()

    def test_flip_count_equals_hamming_distance(self, problem, rng):
        x0 = rng.integers(0, 2, problem.n, dtype=np.uint8)
        state = SearchState.from_bits(problem, x0)
        target = rng.integers(0, 2, problem.n, dtype=np.uint8)
        hamming = int(np.count_nonzero(x0 ^ target))
        _, _, flips = straight_search(state, target)
        assert flips == hamming

    def test_zero_distance_is_noop(self, problem, rng):
        x0 = rng.integers(0, 2, problem.n, dtype=np.uint8)
        state = SearchState.from_bits(problem, x0)
        bx, be, flips = straight_search(state, x0)
        assert flips == 0
        assert be == state.energy
        assert np.array_equal(bx, x0)

    @given(st.integers(0, 2**31 - 1))
    def test_random_targets_always_reached(self, seed):
        q = QuboMatrix.random(10, seed=123)
        rng = np.random.default_rng(seed)
        state = SearchState.from_bits(q, rng.integers(0, 2, 10, dtype=np.uint8))
        target = rng.integers(0, 2, 10, dtype=np.uint8)
        straight_search(state, target)
        assert np.array_equal(state.x, target)
        state.validate()


class TestBestTracking:
    def test_best_includes_start(self, problem):
        """If the start is the best point on the path, it is returned."""
        state = SearchState.zeros(problem)
        # Walk to the all-ones vector; E(0)=0 may well be the best.
        bx, be, _ = straight_search(state, np.ones(problem.n, dtype=np.uint8))
        assert be <= 0
        assert be == energy(problem, bx)

    def test_best_energy_consistent(self, problem, rng):
        state = SearchState.zeros(problem)
        target = rng.integers(0, 2, problem.n, dtype=np.uint8)
        bx, be, _ = straight_search(state, target)
        assert be == energy(problem, bx)

    def test_scan_neighbors_never_worse(self, problem, rng):
        target = rng.integers(0, 2, problem.n, dtype=np.uint8)
        s1 = SearchState.zeros(problem)
        _, e_plain, _ = straight_search(s1, target, scan_neighbors=False)
        s2 = SearchState.zeros(problem)
        _, e_scan, _ = straight_search(s2, target, scan_neighbors=True)
        assert e_scan <= e_plain

    def test_scan_best_consistent(self, problem, rng):
        state = SearchState.zeros(problem)
        target = rng.integers(0, 2, problem.n, dtype=np.uint8)
        bx, be, _ = straight_search(state, target, scan_neighbors=True)
        assert be == energy(problem, bx)


class TestGreedyOrder:
    def test_first_flip_is_min_delta_among_diff(self, problem):
        state = SearchState.zeros(problem)
        target = np.zeros(problem.n, dtype=np.uint8)
        target[[2, 5, 9]] = 1
        deltas = {k: int(state.delta[k]) for k in (2, 5, 9)}
        k_first = min(deltas, key=deltas.get)
        straight_search(state, target)
        # Can't observe intermediate flips directly; re-run manually.
        s2 = SearchState.zeros(problem)
        diff = [2, 5, 9]
        first = min(diff, key=lambda k: int(s2.delta[k]))
        assert first == k_first

    def test_wrong_target_length(self, problem):
        state = SearchState.zeros(problem)
        with pytest.raises(ValueError):
            straight_search(state, np.zeros(problem.n + 1, dtype=np.uint8))
