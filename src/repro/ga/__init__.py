"""Host-side genetic algorithm (paper §2.2.1, §3.1).

The CPU host maintains a :class:`~repro.ga.pool.SolutionPool` — sorted
by energy, duplicate-free (the paper's defence against premature
convergence) — and generates *target solutions* for the device local
searches via mutation, uniform crossover, and copy
(:mod:`~repro.ga.operators`).  The host **never evaluates the energy
function**: solution energies arrive from the devices, and
freshly-seeded random solutions carry energy +∞ until a device reports
on them.
"""

from repro.ga.host import GaConfig, TargetGenerator
from repro.ga.operators import crossover_uniform, mutate, select_parent
from repro.ga.pool import PoolEntry, SolutionPool

__all__ = [
    "SolutionPool",
    "PoolEntry",
    "TargetGenerator",
    "GaConfig",
    "mutate",
    "crossover_uniform",
    "select_parent",
]
