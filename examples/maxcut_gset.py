#!/usr/bin/env python3
"""Max-Cut on a G-set-style graph (paper §4.1.1, Table 1(a)).

Builds the synthetic analogue of G1 (800 vertices, 19 176 unweighted
edges), converts it to QUBO with Eq. (17) — under which the energy is
the negated cut weight — solves with ABS, and reports the cut.

If you have a real G-set file (e.g. downloaded from Ye's page), pass
its path:  python examples/maxcut_gset.py path/to/G1
"""

from __future__ import annotations

import sys

from repro import AbsConfig, AdaptiveBulkSearch
from repro.problems import (
    cut_value,
    energy_to_cut,
    load_gset,
    maxcut_to_qubo,
    synthetic_gset,
)


def main(argv: list[str]) -> None:
    if len(argv) > 1:
        graph = load_gset(argv[1])
        print(f"loaded {argv[1]}")
    else:
        graph = synthetic_gset("G1")
        print("using the seeded synthetic G1 analogue (same size/family)")
    print(
        f"graph: {graph.number_of_nodes()} vertices, "
        f"{graph.number_of_edges()} edges"
    )

    qubo = maxcut_to_qubo(graph)
    config = AbsConfig(
        blocks_per_gpu=32,
        local_steps=64,
        pool_capacity=48,
        time_limit=3.0,
        seed=1,
    )
    result = AdaptiveBulkSearch(qubo, config).solve()

    cut = energy_to_cut(result.best_energy)
    print(f"best cut found : {cut}  (energy {result.best_energy})")
    print(f"search rate    : {result.search_rate:.3g} solutions/s")

    # Cross-check by summing the cut edges directly on the graph.
    direct = cut_value(graph, result.best_x)
    assert direct == cut, (direct, cut)
    side0 = int((result.best_x == 0).sum())
    print(f"verified on the graph; partition sizes {side0} / {len(result.best_x) - side0}")
    print(f"cut fraction   : {cut / graph.number_of_edges():.1%} of all edges")


if __name__ == "__main__":
    main(sys.argv)
