"""Tests for the event schema and JSONL trace validator."""

import json

import pytest

from repro.telemetry.schema import (
    EVENT_SCHEMAS,
    SchemaError,
    main,
    validate_record,
    validate_trace,
)


def rec(event, seq=1, t=0.0, **fields):
    return {"event": event, "t": t, "seq": seq, **fields}


GOOD_LOCAL = dict(steps=4, flips=16, evaluated=256)


class TestValidateRecord:
    def test_valid_record_passes(self):
        validate_record(rec("engine.local", **GOOD_LOCAL))

    def test_missing_common_field(self):
        with pytest.raises(SchemaError, match="missing common field"):
            validate_record({"event": "engine.local", "t": 0.0, **GOOD_LOCAL})

    def test_unknown_event_rejected(self):
        with pytest.raises(SchemaError, match="unknown event"):
            validate_record(rec("engine.bogus"))

    def test_missing_required_field(self):
        with pytest.raises(SchemaError, match="missing required field 'evaluated'"):
            validate_record(rec("engine.local", steps=4, flips=16))

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError, match="wrong type"):
            validate_record(rec("engine.local", steps="four", flips=16, evaluated=1))

    def test_bool_is_not_an_int(self):
        with pytest.raises(SchemaError, match="wrong type"):
            validate_record(rec("engine.local", steps=True, flips=16, evaluated=1))

    def test_undeclared_field_rejected(self):
        with pytest.raises(SchemaError, match="undeclared field"):
            validate_record(rec("engine.local", surprise=1, **GOOD_LOCAL))

    def test_nullable_fields(self):
        validate_record(
            rec(
                "host.absorb",
                arrived=8, inserted=2, rejected_duplicate=1, rejected_worse=5,
                pool_size=16, pool_best=None, pool_worst=None, pool_spread=None,
            )
        )

    def test_every_schema_name_is_dotted_lowercase(self):
        for name in EVENT_SCHEMAS:
            assert name == name.lower()
            assert "." in name


class TestValidateTrace:
    def _write(self, path, records):
        path.write_text("".join(json.dumps(r) + "\n" for r in records))

    def test_counts_by_event(self, tmp_path):
        p = tmp_path / "t.jsonl"
        self._write(
            p,
            [
                rec("engine.local", seq=1, **GOOD_LOCAL),
                rec("engine.local", seq=2, **GOOD_LOCAL),
                rec("engine.straight", seq=3, flips=5, iters=3, retired=2,
                    already_at_target=0),
            ],
        )
        assert validate_trace(p) == {"engine.local": 2, "engine.straight": 1}

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text(json.dumps(rec("engine.local", **GOOD_LOCAL)) + "\n\n")
        assert validate_trace(p) == {"engine.local": 1}

    def test_invalid_json_line_located(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text(json.dumps(rec("engine.local", **GOOD_LOCAL)) + "\n{oops\n")
        with pytest.raises(SchemaError, match="line 2"):
            validate_trace(p)

    def test_non_object_line_rejected(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("[1, 2]\n")
        with pytest.raises(SchemaError, match="not a JSON object"):
            validate_trace(p)

    def test_non_increasing_seq_rejected(self, tmp_path):
        p = tmp_path / "t.jsonl"
        self._write(
            p,
            [rec("engine.local", seq=2, **GOOD_LOCAL),
             rec("engine.local", seq=2, **GOOD_LOCAL)],
        )
        with pytest.raises(SchemaError, match="seq"):
            validate_trace(p)


class TestMain:
    def test_valid_file_exit_zero(self, tmp_path, capsys):
        p = tmp_path / "t.jsonl"
        p.write_text(json.dumps(rec("engine.local", **GOOD_LOCAL)) + "\n")
        assert main([str(p)]) == 0
        out = capsys.readouterr().out
        assert "OK: 1 events" in out
        assert "engine.local" in out

    def test_invalid_file_exit_one(self, tmp_path, capsys):
        p = tmp_path / "t.jsonl"
        p.write_text('{"event": "nope", "t": 0.0, "seq": 1}\n')
        assert main([str(p)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_missing_file_exit_one(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 1
        assert "INVALID" in capsys.readouterr().err
