"""Tests for the device-side §3.2 loop."""

import numpy as np
import pytest

from repro.abs.device import DeviceSimulator
from repro.qubo import QuboMatrix, energy


@pytest.fixture
def problem():
    return QuboMatrix.random(24, seed=404)


def targets_for(problem, B, seed=0):
    return np.random.default_rng(seed).integers(
        0, 2, (B, problem.n), dtype=np.uint8
    )


class TestRound:
    def test_returns_batched_energies_and_solutions(self, problem):
        dev = DeviceSimulator(problem, 5, local_steps=10)
        energies, xs = dev.round(targets_for(problem, 5))
        assert energies.shape == (5,)
        assert xs.shape == (5, problem.n)
        assert xs.dtype == np.uint8
        for e, x in zip(energies, xs):
            assert e == energy(problem, x)

    def test_round_returns_copies(self, problem):
        """Step-5 output must not alias engine state across rounds."""
        dev = DeviceSimulator(problem, 3, local_steps=4)
        energies, xs = dev.round(targets_for(problem, 3))
        snap_e, snap_x = energies.copy(), xs.copy()
        dev.round(targets_for(problem, 3, seed=1))
        assert (energies == snap_e).all()
        assert (xs == snap_x).all()

    def test_round_counter(self, problem):
        dev = DeviceSimulator(problem, 2, local_steps=4)
        dev.round(targets_for(problem, 2))
        dev.round(targets_for(problem, 2, seed=1))
        assert dev.rounds == 2

    def test_walk_position_persists_across_rounds(self, problem):
        """Figure 4: iteration i starts from iteration i−1's end."""
        dev = DeviceSimulator(problem, 1, local_steps=7)
        dev.round(targets_for(problem, 1))
        flips_before = dev.engine.counters.flips
        same_target = dev.engine.X[0:1].copy()
        dev.round(same_target)
        # Straight search from the current position to itself is free.
        assert dev.engine.counters.straight_flips == flips_before - 7

    def test_best_reset_between_rounds(self, problem):
        """Step 3: each round reports bests found *that* round."""
        dev = DeviceSimulator(problem, 1, local_steps=3)
        dev.round(targets_for(problem, 1))
        # Force the walk into a deliberately bad corner for round 2.
        worst_target = np.ones((1, problem.n), dtype=np.uint8)
        energies, xs = dev.round(worst_target)
        # Energies are still self-consistent even if worse than round 1.
        assert energies[0] == energy(problem, xs[0])

    def test_evaluated_monotone(self, problem):
        dev = DeviceSimulator(problem, 3, local_steps=5)
        dev.round(targets_for(problem, 3))
        e1 = dev.evaluated
        dev.round(targets_for(problem, 3, seed=2))
        assert dev.evaluated > e1

    def test_zero_local_steps_is_straight_only(self, problem):
        dev = DeviceSimulator(problem, 2, local_steps=0)
        t = targets_for(problem, 2)
        dev.round(t)
        assert (dev.engine.X == t).all()

    def test_invalid_local_steps(self, problem):
        with pytest.raises(ValueError):
            DeviceSimulator(problem, 2, local_steps=-1)

    def test_scan_neighbors_improves_or_ties(self, problem):
        t = targets_for(problem, 4)
        dev_scan = DeviceSimulator(problem, 4, local_steps=0, scan_neighbors=True)
        dev_plain = DeviceSimulator(problem, 4, local_steps=0, scan_neighbors=False)
        e_scan, _ = dev_scan.round(t)
        e_plain, _ = dev_plain.round(t)
        assert (e_scan <= e_plain).all()
