"""Fixture schema with one live and one dead entry of each kind."""

EVENT_SCHEMAS = {
    "demo.event": None,
    "dead.event": None,
}

COUNTER_NAMES = frozenset({"demo.count", "dead.count"})

COUNTER_PATTERNS = ("demo.*.ns", "dead.*.ns")
