"""Tests for the sync-mode ABS solver."""

import numpy as np
import pytest

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix, energy
from repro.search import solve_exact


@pytest.fixture
def small():
    return QuboMatrix.random(16, seed=808)


class TestSolveSync:
    def test_reaches_exact_optimum(self, small):
        opt = solve_exact(small).energy
        cfg = AbsConfig(
            n_gpus=1,
            blocks_per_gpu=16,
            local_steps=16,
            pool_capacity=16,
            target_energy=opt,
            max_rounds=200,
            seed=7,
        )
        res = AdaptiveBulkSearch(small, cfg).solve("sync")
        assert res.reached_target
        assert res.best_energy == opt
        assert res.time_to_target is not None

    def test_result_self_consistent(self, small):
        cfg = AbsConfig(max_rounds=5, blocks_per_gpu=8, seed=1)
        res = AdaptiveBulkSearch(small, cfg).solve("sync")
        assert res.best_energy == energy(small, res.best_x)
        assert res.evaluated > 0
        assert res.flips > 0
        assert res.search_rate > 0
        assert res.rounds == 5
        assert res.n_gpus == 1

    def test_deterministic_given_seed(self, small):
        cfg = AbsConfig(max_rounds=8, blocks_per_gpu=8, seed=99)
        a = AdaptiveBulkSearch(small, cfg).solve("sync")
        b = AdaptiveBulkSearch(small, cfg).solve("sync")
        assert a.best_energy == b.best_energy
        assert np.array_equal(a.best_x, b.best_x)
        assert a.evaluated == b.evaluated

    def test_different_seeds_explore_differently(self, small):
        res = [
            AdaptiveBulkSearch(
                small, AbsConfig(max_rounds=2, blocks_per_gpu=4, seed=s)
            ).solve("sync")
            for s in (1, 2, 3)
        ]
        evaluated = {r.evaluated for r in res}
        assert len(evaluated) > 1  # Hamming distances differ by seed

    def test_max_rounds_stops(self, small):
        cfg = AbsConfig(max_rounds=3, blocks_per_gpu=4, seed=0)
        res = AdaptiveBulkSearch(small, cfg).solve("sync")
        assert res.rounds == 3
        assert not res.reached_target

    def test_time_limit_stops(self, small):
        cfg = AbsConfig(time_limit=0.2, blocks_per_gpu=4, seed=0)
        res = AdaptiveBulkSearch(small, cfg).solve("sync")
        assert res.elapsed < 5.0

    def test_history_is_monotone_nonincreasing(self, small):
        cfg = AbsConfig(max_rounds=20, blocks_per_gpu=8, seed=3)
        res = AdaptiveBulkSearch(small, cfg).solve("sync")
        energies = [e for _, e in res.history]
        assert energies
        assert all(energies[i + 1] <= energies[i] for i in range(len(energies) - 1))

    def test_multi_gpu_sync(self, small):
        cfg = AbsConfig(n_gpus=3, blocks_per_gpu=4, max_rounds=9, seed=5)
        res = AdaptiveBulkSearch(small, cfg).solve("sync")
        assert res.n_gpus == 3
        assert res.rounds == 9
        assert res.best_energy == energy(small, res.best_x)

    def test_unknown_mode_rejected(self, small):
        with pytest.raises(ValueError, match="mode"):
            AdaptiveBulkSearch(small, AbsConfig(max_rounds=1)).solve("quantum")

    def test_empty_problem_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveBulkSearch(QuboMatrix.zeros(0), AbsConfig(max_rounds=1))

    def test_summary_string(self, small):
        cfg = AbsConfig(max_rounds=2, blocks_per_gpu=4, seed=0)
        res = AdaptiveBulkSearch(small, cfg).solve("sync")
        s = res.summary()
        assert "best=" in s and "rounds=" in s

    def test_ga_improves_over_time(self):
        """Longer runs should not be worse (best is monotone)."""
        q = QuboMatrix.random(48, seed=4242)
        short = AdaptiveBulkSearch(
            q, AbsConfig(max_rounds=2, blocks_per_gpu=8, seed=11)
        ).solve("sync")
        long = AdaptiveBulkSearch(
            q, AbsConfig(max_rounds=30, blocks_per_gpu=8, seed=11)
        ).solve("sync")
        assert long.best_energy <= short.best_energy
