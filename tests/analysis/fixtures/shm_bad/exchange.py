"""Fixture protocol module with every store-ordering mistake."""

import numpy as np

_H_SEQ = 0
_H_EPOCH = 1


class TornMailbox:
    def publish(self, payload, epoch):
        gen = int(self._header[_H_SEQ]) + 1
        self._header[_H_SEQ] = gen
        self._slots[gen % 2, :] = payload
        self._header[_H_EPOCH] = epoch
        return gen

    def fetch(self, last_gen):
        gen = int(self._header[_H_SEQ])
        if gen <= last_gen:
            return None
        payload = self._slots[gen % 2].copy()
        return gen, payload


class TornRing:
    def consume(self):
        tail = int(self._header[_H_EPOCH])
        s = tail % self.slots
        self._header[_H_EPOCH] = tail + 1
        record = (self._energies[s].copy(), self._packed[s].copy())
        return record
