"""Fixture cli: the parser forgets gamma too."""

from .config import AbsConfig


def run(args):
    return AbsConfig(alpha=args.alpha)
