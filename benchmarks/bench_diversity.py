"""Diverse ABS — niched pool + variant fleet vs. the homogeneous base.

The follow-up paper ("Diverse Adaptive Bulk Search", arXiv:2207.03069)
argues that a homogeneous ABS fleet wastes device-seconds re-finding
near-duplicate solutions, and that Hamming-niched pool admission plus
a heterogeneous variant mix keeps the GA targets spread out without
hurting time-to-target.  This bench measures both claims on a hard
Table-1(c)-style instance:

- *diversity of the pool*: mean pairwise Hamming distance over the
  final host pool, diversity-on vs. off — niching must push it
  strictly up;
- *time-to-target*: mean TTS to a calibrated target over seeded
  repeats — the diverse configuration must be no worse.

Results land in ``benchmarks/results/BENCH_diversity.json`` (written
directly, like ``BENCH_exchange.json``) plus a rendered table.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import FULL, RESULTS_DIR
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.metrics.tts import time_to_solution
from repro.problems.random_qubo import random_qubo
from repro.utils.tables import Table

_N = 512 if FULL else 192
_REPEATS = 10 if FULL else 4
_CALIBRATE_S = 20.0 if FULL else 3.0
_TTS_LIMIT_S = 60.0 if FULL else 10.0
# Conservative target fraction: both configurations must reach it on
# every repeat, so the TTS comparison never divides by a lucky subset.
_FRACTION = 0.97
_MIN_DIST = max(4, _N // 32)

_BASE = dict(
    n_gpus=4,
    blocks_per_gpu=8,
    local_steps=32,
    pool_capacity=32,
)

_CONFIGS = {
    "baseline": {},
    "diverse": {
        "diversity_min_dist": _MIN_DIST,
        "variants": "fleet",
        "variant_adapt": True,
        "variant_adapt_period": 4,
    },
}


def _mean_pool_distance(qubo, extra: dict, *, rounds: int, seed: int) -> float:
    res = AdaptiveBulkSearch(
        qubo, AbsConfig(max_rounds=rounds, seed=seed, **_BASE, **extra)
    ).solve("sync")
    return float(res.pool_mean_distance or 0.0)


def test_diversity(report):
    started = time.perf_counter()
    qubo = random_qubo(_N, seed=_N)

    calib = AdaptiveBulkSearch(
        qubo, AbsConfig(time_limit=_CALIBRATE_S, seed=4000, **_BASE)
    ).solve("sync")
    target = int(_FRACTION * calib.best_energy)  # energies < 0

    table = Table(
        [
            "config", "mean pool Hamming dist",
            "mean TTS (s)", "success", "best energy",
        ],
        title=f"Diverse ABS — niched pool + variant fleet (n={_N}, "
        f"d_min={_MIN_DIST}, target={target})",
    )
    rows: dict[str, dict] = {}
    pool_rounds = 24 * 4  # fixed search budget for the diversity probe
    for name, extra in _CONFIGS.items():
        distances = [
            _mean_pool_distance(qubo, extra, rounds=pool_rounds, seed=s)
            for s in (7001, 7002, 7003)
        ]
        mean_dist = sum(distances) / len(distances)
        tts = time_to_solution(
            qubo,
            target,
            AbsConfig(time_limit=_TTS_LIMIT_S, seed=5000, **_BASE, **extra),
            repeats=_REPEATS,
        )
        rows[name] = {
            "label": name,
            "config": extra,
            "mean_pool_hamming_distance": mean_dist,
            "pool_distance_samples": distances,
            "mean_tts_s": tts.mean_time,
            "successes": tts.successes,
            "repeats": tts.repeats,
            "target_energy": target,
            "best_energies": list(tts.best_energies),
        }
        table.add_row(
            [
                name,
                f"{mean_dist:.2f}",
                f"{tts.mean_time:.3f}",
                f"{tts.successes}/{tts.repeats}",
                min(tts.best_energies),
            ]
        )
        assert tts.success_rate == 1.0, f"{name}: target missed on a repeat"

    base, div = rows["baseline"], rows["diverse"]
    # The two headline claims of the follow-up paper, as hard checks:
    assert (
        div["mean_pool_hamming_distance"] > base["mean_pool_hamming_distance"]
    ), "niched admission must strictly raise pool diversity"
    # "No worse" with a small tolerance — TTS is a wall-clock mean over
    # seeded repeats, so equal-quality configs jitter a few percent.
    assert div["mean_tts_s"] <= base["mean_tts_s"] * 1.10, (
        "diverse fleet must not slow time-to-target down"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": "diversity",
        "full_scale": FULL,
        "n": _N,
        "min_distance": _MIN_DIST,
        "target_fraction": _FRACTION,
        "wall_clock_s": round(time.perf_counter() - started, 6),
        "runs": list(rows.values()),
    }
    (RESULTS_DIR / "BENCH_diversity.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    report(
        "Diversity ablation",
        table.render()
        + "\n\nPool distance: mean pairwise Hamming distance over the final "
        "host pool after a fixed round budget (3 seeds).  TTS: mean over "
        f"{_REPEATS} seeded repeats to {_FRACTION:.0%} of a calibrated best.",
    )
