"""The service job-lifecycle model checker: proof, anti-proof, and the
pin against the real :class:`SolverService`.

Three layers, mirroring ``test_interleave.py``:

1. the modeled lifecycle passes *exhaustively* — every interleaving of
   submit / dispatch / cancel / close for two same-key jobs upholds
   the four safety invariants (no poisoned cache, no result-less DONE,
   no lost queue slot, no double dispatch), well inside the 10 s
   acceptance budget;
2. every injected lifecycle bug — including the re-injected PR-9
   cancel/cache race — is detected with a reconstructed schedule;
3. a *real* ``SolverService`` is driven through the same schedules the
   model explores (queued-cancel, running-cancel, resubmit-after-
   cancel, resubmit-after-done, close-drain), asserting the model's
   invariants on the real object — so the step machines check the
   actual service, not a drifted model of it.
"""

from __future__ import annotations

import threading

import pytest

from repro.abs import AbsConfig
from repro.abs.solver import AdaptiveBulkSearch
from repro.analysis.lifecycle import SERVICE_BUGS, explore_service
from repro.qubo import QuboMatrix
from repro.service import ServiceConfig, SolverService

pytestmark = pytest.mark.analysis


# -- 1. exhaustive pass -----------------------------------------------------

@pytest.mark.timeout(10)
def test_service_lifecycle_exhaustive_no_violations():
    report = explore_service()
    assert report.ok, report.violations
    assert report.structure == "ServiceLifecycle"
    # exhaustiveness sanity: hundreds of states, full schedules reached
    assert report.states > 200
    assert report.transitions > report.states
    assert report.terminals > 0
    assert report.elapsed < 10


def test_unknown_bug_rejected():
    with pytest.raises(ValueError, match="unknown service bug"):
        explore_service(bug="cache_everything")


# -- 2. injected bugs are detected with schedules ---------------------------

@pytest.mark.timeout(10)
@pytest.mark.parametrize("bug", SERVICE_BUGS)
def test_injected_bug_detected_with_schedule(bug):
    report = explore_service(bug=bug)
    assert not report.ok, f"{bug} not detected"
    assert all("schedule:" in v for v in report.violations)


@pytest.mark.timeout(10)
def test_pr9_cache_poisoning_interleaving_reconstructed():
    """The exact PR-9 regression: with the cancellation check removed
    from the cache insert, some schedule caches a cancellation-
    truncated result — and the checker names a schedule in which the
    cancellation lands between the dispatcher's claim and its insert."""
    report = explore_service(bug="pr9_cancel_cache")
    poisonings = [
        v for v in report.violations
        if "partial" in v and "cache" in v
    ]
    assert poisonings, report.violations
    schedules = [v.split("schedule:", 1)[1] for v in poisonings]
    # At least one reconstructed schedule shows the race shape: the
    # job is dispatched, a cancellation (cancel or close) arrives, and
    # dispatch steps continue to the poisoning insert afterwards.
    assert any(
        "dispatch" in s
        and ("cancel" in s or "close" in s)
        and s.rstrip(" )").endswith("dispatch")
        for s in schedules
    ), schedules


@pytest.mark.timeout(10)
def test_fixed_model_has_no_poisoning_states():
    """The correct (current) insert logic reaches states the buggy one
    also reaches — the graphs differ, proving the bug knob changes
    behavior rather than disabling exploration."""
    ok = explore_service()
    bad = explore_service(bug="pr9_cancel_cache")
    assert ok.states != bad.states or ok.transitions != bad.transitions


# -- 3. the real service driven through the modeled schedules ---------------

@pytest.fixture
def problem():
    return QuboMatrix.random(20, seed=11)


def cfg(seed, **overrides):
    kwargs = dict(blocks_per_gpu=4, local_steps=4, max_rounds=3, seed=seed)
    kwargs.update(overrides)
    return AbsConfig(**kwargs)


@pytest.fixture
def gate(monkeypatch):
    """Patch ``solve`` so every job blocks until the gate opens."""
    evt = threading.Event()
    real = AdaptiveBulkSearch.solve

    def gated(self, mode="sync"):
        assert evt.wait(30), "test gate never opened"
        return real(self, mode)

    monkeypatch.setattr(AdaptiveBulkSearch, "solve", gated)
    return evt


@pytest.mark.timeout(60)
class TestRealServiceFollowsModel:
    """Each test is one schedule family from the explored graph,
    asserting the same invariant the model proves for it."""

    def test_schedule_submit_cancel_dispatch(self, problem, gate):
        # Model: cancel(j) while QUEUED → CANCELLED, slot freed, the
        # stale heap entry is skipped, never dispatched (no result).
        with SolverService(ServiceConfig(max_queue=1)) as svc:
            running = svc.submit(problem, cfg(1), mode="sync")
            while svc.status(running)["status"] == "queued":
                pass
            queued = svc.submit(problem, cfg(2), mode="sync")
            assert svc.cancel(queued)
            snap = svc.status(queued)
            assert snap["status"] == "cancelled"
            # lost-queue-slot invariant: the slot is free again
            svc.submit(problem, cfg(3), mode="sync")
            gate.set()
            with pytest.raises(RuntimeError, match="cancelled before it ran"):
                svc.result(queued, timeout=30)

    def test_schedule_dispatch_cancel_insert_never_caches(self, problem, gate):
        # Model: cancellation between claim and insert → CANCELLED and
        # nothing cached; an identical resubmission must re-run, not
        # cache-hit (the PR-9 poisoning, on the real object).
        run_cfg = cfg(5)  # seeded sync job: cacheable
        with SolverService() as svc:
            first = svc.submit(problem, run_cfg, mode="sync")
            while svc.status(first)["status"] == "queued":
                pass  # claimed: the dispatcher is gated inside the run
            assert svc.cancel(first)  # RUNNING → flag only
            gate.set()
            resubmit = svc.submit(problem, run_cfg, mode="sync")
            res = svc.result(resubmit, timeout=30)
        assert svc.status(first)["status"] == "cancelled"
        snap = svc.status(resubmit)
        assert snap["status"] == "done"
        assert snap["cache_hit"] is False  # nothing was poisoned in
        assert res.rounds == 3

    def test_schedule_dispatch_done_then_cache_hit(self, problem, gate):
        # Model: uncancelled run inserts; the same-key resubmission
        # cache-hits with a full result and DONE status.
        run_cfg = cfg(6)
        gate.set()
        with SolverService() as svc:
            first = svc.result(svc.submit(problem, run_cfg, mode="sync"),
                               timeout=30)
            again = svc.submit(problem, run_cfg, mode="sync")
            res = svc.result(again, timeout=30)
            snap = svc.status(again)
        assert snap["status"] == "done"
        assert snap["cache_hit"] is True
        assert res.best_energy == first.best_energy
        assert res.rounds == first.rounds  # full, not truncated

    def test_schedule_close_drains_queue(self, problem, gate):
        # Model: close cancels every queued job and nothing is
        # dispatched after shutdown.
        svc = SolverService()
        running = svc.submit(problem, cfg(1), mode="sync")
        while svc.status(running)["status"] == "queued":
            pass
        queued = svc.submit(problem, cfg(2), mode="sync")
        gate.set()
        svc.close()
        assert svc.status(queued)["status"] == "cancelled"
        assert svc.status(queued)["best_energy"] is None \
            if "best_energy" in svc.status(queued) else True
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(problem, cfg(3), mode="sync")

    def test_done_always_has_result(self, problem, gate):
        # Model invariant: DONE ⇒ result present (cache hit or run).
        gate.set()
        with SolverService() as svc:
            jid = svc.submit(problem, cfg(7), mode="sync")
            svc.result(jid, timeout=30)
            snap = svc.status(jid)
        assert snap["status"] == "done"
        assert "best_energy" in snap  # only set when job.result exists
