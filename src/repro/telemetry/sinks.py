"""Event sinks: where bus events go.

- :class:`JsonlSink` — one compact JSON object per line, the on-disk
  trace format (``--trace-out``; schema in ``docs/observability.md``).
- :class:`MemorySink` — collects events in a list; tests and notebooks.
- :class:`LoggingSink` — forwards every event to the stdlib
  ``repro.telemetry`` logger at DEBUG (``--log-level debug``).
- :class:`ProgressReporter` — rate-limited human-readable progress lines
  at INFO, driven by ``host.round`` / ``solve.end`` events
  (``--log-level info``).
"""

from __future__ import annotations

import json
import logging
import time
from pathlib import Path
from typing import Callable, Union

from repro.telemetry.events import Event

PathLike = Union[str, Path]

logger = logging.getLogger("repro.telemetry")


class JsonlSink:
    """Writes each event as one JSON line to ``path``.

    The file handle is line-buffered through an internal list and
    flushed every ``flush_every`` events and on :meth:`close`, so a
    crashed run still leaves a mostly-complete trace without paying a
    syscall per event.
    """

    def __init__(self, path: PathLike, *, flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self._fh = self.path.open("w", encoding="utf-8")
        self._buffer: list[str] = []
        self._flush_every = int(flush_every)
        self.written = 0

    def handle(self, event: Event) -> None:
        self._buffer.append(json.dumps(event.to_record(), separators=(",", ":")))
        self.written += 1
        if len(self._buffer) >= self._flush_every:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._fh.flush()

    def close(self) -> None:
        """Flush and close; safe to call more than once."""
        if not self._fh.closed:
            self._flush()
            self._fh.close()


class MemorySink:
    """Keeps every event in :attr:`events` (in emission order)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)

    def records(self) -> list[dict]:
        """All events as JSON-ready records (what a JSONL file would hold)."""
        return [e.to_record() for e in self.events]

    def named(self, name: str) -> list[Event]:
        """Events whose name equals ``name``."""
        return [e for e in self.events if e.name == name]

    def names(self) -> set[str]:
        """Distinct event names seen so far."""
        return {e.name for e in self.events}


class LoggingSink:
    """Logs every event at DEBUG on the ``repro.telemetry`` logger."""

    def __init__(self, log: logging.Logger | None = None) -> None:
        self._log = log or logger

    def handle(self, event: Event) -> None:
        self._log.debug("%s t=%.4f %s", event.name, event.t, dict(event.fields))


class ProgressReporter:
    """Human-readable progress lines, at most one per ``interval`` seconds.

    Watches ``host.round`` events (one per device round in sync mode,
    one per worker result in process mode) and always reports the final
    ``solve.end``.  Lines go to the ``repro.telemetry`` logger at INFO
    so ``--log-level info`` surfaces them on stderr without touching the
    solver's stdout output.
    """

    def __init__(
        self,
        interval: float = 1.0,
        *,
        log: logging.Logger | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be non-negative, got {interval}")
        self.interval = float(interval)
        self._log = log or logger
        self._clock = clock
        self._last = -float("inf")
        self.reported = 0

    def handle(self, event: Event) -> None:
        if event.name == "solve.end":
            f = event.fields
            self._log.info(
                "solve done: best=%s rounds=%s elapsed=%.3gs evaluated=%s",
                f.get("best_energy"), f.get("rounds"), f.get("elapsed", 0.0),
                f.get("evaluated"),
            )
            self.reported += 1
            return
        if event.name != "host.round":
            return
        now = self._clock()
        if now - self._last < self.interval:
            return
        self._last = now
        f = event.fields
        self._log.info(
            "round %s (device %s): best=%s pool=%s t=%.3gs",
            f.get("round"), f.get("device"), f.get("best_energy"),
            f.get("pool_size"), f.get("elapsed", 0.0),
        )
        self.reported += 1
