"""Tests for the multi-process ABS solver (the multi-GPU simulation)."""

import glob

import numpy as np
import pytest

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix, energy
from repro.search import solve_exact


@pytest.fixture
def small():
    return QuboMatrix.random(16, seed=909)


class TestSolveProcess:
    def test_reaches_exact_optimum(self, small):
        opt = solve_exact(small).energy
        cfg = AbsConfig(
            n_gpus=2,
            blocks_per_gpu=8,
            local_steps=16,
            pool_capacity=16,
            target_energy=opt,
            time_limit=30.0,
            seed=13,
        )
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.reached_target
        assert res.best_energy == opt

    def test_result_self_consistent(self, small):
        cfg = AbsConfig(max_rounds=6, blocks_per_gpu=4, time_limit=30.0, seed=1)
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.best_energy == energy(small, res.best_x)
        assert res.evaluated > 0
        assert res.rounds >= 1

    def test_time_limit_honoured(self, small):
        cfg = AbsConfig(time_limit=0.5, blocks_per_gpu=4, seed=2)
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.elapsed < 10.0

    def test_multi_worker_counters_aggregate(self, small):
        cfg = AbsConfig(
            n_gpus=2, blocks_per_gpu=4, max_rounds=8, time_limit=30.0, seed=3
        )
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.n_gpus == 2
        assert res.evaluated > 0
        assert res.flips > 0

    def test_no_shared_memory_leak(self, small):
        before = set(glob.glob("/dev/shm/*"))
        cfg = AbsConfig(max_rounds=4, blocks_per_gpu=4, time_limit=30.0, seed=4)
        AdaptiveBulkSearch(small, cfg).solve("process")
        after = set(glob.glob("/dev/shm/*"))
        assert after <= before  # nothing new left behind
