"""Analytic search-rate model, calibrated against the paper's Table 2.

Python cannot reach 1.24 × 10¹² solutions/s; what *can* be reproduced is
the **shape** of the throughput results: how the search rate depends on
the problem size ``n``, the bits-per-thread ``p``, and the GPU count.

Model
-----
One local-search step of a block evaluates ``n`` solutions (Theorem 1).
Its latency is modeled as

``t(p, T) = a·p + d·p² + b·p·log₂(T) + c``      (T = threads/block = n/p)

- ``a·p``          — each thread applies ``p`` delta updates
  sequentially;
- ``d·p²``         — superlinear penalty for large ``p`` (register
  pressure, lost memory-level parallelism), which is what bends the
  curve back down at p = 32;
- ``b·p·log₂(T)`` — each thread feeds its ``p`` candidates through the
  log-depth block-wide min reduction (Figure 2's min-Δ selection), and
  wider blocks also read longer ``W`` rows per owned bit;
- ``c``            — fixed per-step overhead.

This is the simplest form (of those tried against the published data)
that recovers the paper's optimal bits-per-thread at **every** problem
size; see ``tests/gpusim/test_timing.py`` for the shape assertions.

At 100 % occupancy each SM hosts ``max_threads_per_sm / T`` blocks, so

``rate(n, p, g) = g · sm · (threads_per_sm / T) · n / t(p, T)
               = g · sm · threads_per_sm · p / t(p, T)``.

The four constants are fit by least squares to the twenty published
Table 2 rows.  The fit is a *descriptive* model of one hardware
generation — its purpose is to regenerate Table 2 / Figure 8 with the
correct ordering, peak locations, and scaling, which the tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.gpusim.device import RTX_2080_TI, DeviceSpec
from repro.gpusim.occupancy import compute_occupancy


@dataclass(frozen=True)
class ThroughputModel:
    """The calibrated step-latency/throughput model.

    ``a, d, b, c`` are the latency coefficients in seconds (per the
    module docstring); ``device`` supplies the SM/thread arithmetic.
    """

    a: float
    d: float
    b: float
    c: float
    device: DeviceSpec = RTX_2080_TI

    def step_latency(self, n: int, bits_per_thread: int) -> float:
        """Modeled latency of one block step (seconds)."""
        occ = compute_occupancy(n, bits_per_thread, self.device)
        p = bits_per_thread
        t = (
            self.a * p
            + self.d * p * p
            + self.b * p * math.log2(occ.threads_per_block)
            + self.c
        )
        if t <= 0:
            raise ValueError(
                f"model predicts non-positive latency for n={n}, p={p}; "
                "coefficients are outside their valid region"
            )
        return t

    def search_rate(self, n: int, bits_per_thread: int, n_gpus: int = 1) -> float:
        """Modeled solutions/second for ``n_gpus`` devices.

        Linear in ``n_gpus`` — exactly the paper's Figure 8 claim (each
        GPU runs independent blocks; the only coupling is through the
        host, which is off the critical path).
        """
        if n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        occ = compute_occupancy(n, bits_per_thread, self.device)
        per_gpu = occ.active_blocks * n / self.step_latency(n, bits_per_thread)
        return n_gpus * per_gpu

    def best_bits_per_thread(self, n: int) -> int:
        """The ``p`` maximizing the modeled rate for problem size ``n``."""
        from repro.gpusim.occupancy import valid_bits_per_thread

        candidates = valid_bits_per_thread(n, self.device)
        if not candidates:
            raise ValueError(f"no valid bits-per-thread for n={n}")
        return max(candidates, key=lambda p: self.search_rate(n, p))


def _implied_latencies() -> tuple[np.ndarray, np.ndarray]:
    """Design matrix and implied latencies from the published Table 2."""
    from repro.paperdata import TABLE_2, TABLE_2_GPUS

    dev = RTX_2080_TI
    rows = []
    ts = []
    for r in TABLE_2:
        occ = compute_occupancy(r.n, r.bits_per_thread, dev)
        # rate = g · sm · threads_per_sm · p / t  ⇒  t = g·sm·tps·p / rate
        t = (
            TABLE_2_GPUS
            * dev.sm_count
            * dev.max_threads_per_sm
            * r.bits_per_thread
            / (r.rate_tera * 1e12)
        )
        rows.append(
            [
                r.bits_per_thread,
                r.bits_per_thread**2,
                r.bits_per_thread * math.log2(occ.threads_per_block),
                1.0,
            ]
        )
        ts.append(t)
    return np.asarray(rows), np.asarray(ts)


@lru_cache(maxsize=1)
def calibrated_model(device: DeviceSpec = RTX_2080_TI) -> ThroughputModel:
    """Fit the model to the paper's Table 2 by least squares.

    The result is cached; fitting costs one 20×4 ``lstsq``.
    """
    A, t = _implied_latencies()
    coeffs, *_ = np.linalg.lstsq(A, t, rcond=None)
    a, d, b, c = (float(v) for v in coeffs)
    return ThroughputModel(a=a, d=d, b=b, c=c, device=device)


def model_table2(
    model: ThroughputModel | None = None,
    sizes: Sequence[int] = (1024, 2048, 4096, 8192, 16384, 32768),
    n_gpus: int = 4,
) -> list[dict]:
    """Regenerate Table 2 rows from the model.

    Returns dicts with keys ``n, p, threads, blocks, rate`` for every
    valid power-of-two ``p`` at each size.
    """
    from repro.gpusim.occupancy import sweep_bits_per_thread

    m = model or calibrated_model()
    out: list[dict] = []
    for n in sizes:
        for occ in sweep_bits_per_thread(n, m.device):
            out.append(
                {
                    "n": n,
                    "p": occ.bits_per_thread,
                    "threads": occ.threads_per_block,
                    "blocks": occ.active_blocks,
                    "rate": m.search_rate(n, occ.bits_per_thread, n_gpus),
                }
            )
    return out
