"""ASCII table rendering for benchmark harness output.

Every benchmark prints the same rows the paper's tables report; this
module renders them with aligned columns so the paper-vs-measured
comparison in EXPERIMENTS.md can be eyeballed directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned text table.

    >>> t = Table(["graph", "bits", "time (s)"], title="Table 1(a)")
    >>> t.add_row(["G1", 800, 0.0723])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str | None = None
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, row: Iterable[Any]) -> None:
        """Append a row; values are stringified with 4-sig-fig floats."""
        cells = [_cell(v) for v in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table as a string with a rule under the header."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_table(
    headers: Sequence[str], rows: Iterable[Iterable[Any]], title: str | None = None
) -> str:
    """One-shot convenience wrapper around :class:`Table`."""
    table = Table(headers, title=title)
    for row in rows:
        table.add_row(row)
    return table.render()
