"""Algorithm-portfolio meta-search.

The paper's conclusion sketches an "application-agnostic universal QUBO
solver" where different blocks run different algorithms.  At the scalar
level this module provides the simplest robust version of that idea: a
**portfolio** that splits a step budget across several local searches,
runs each from the same start, and returns the best result — no
per-instance tuning needed, at the cost of dividing the budget.

The classic guarantee holds by construction: the portfolio's best
energy is at least as good as any member restricted to its share of
the budget, and on a *family* of instances where different members win,
the portfolio beats every fixed choice run at full budget whenever the
winners' margins exceed the budget split (measured in
``benchmarks``-level tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qubo.matrix import WeightsLike
from repro.search.base import LocalSearch, SearchRecord
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class PortfolioOutcome:
    """Best record plus the per-member breakdown."""

    best: SearchRecord
    winner: str
    records: dict[str, SearchRecord]


class PortfolioSearch(LocalSearch):
    """Run several local searches on a split budget; keep the best.

    Parameters
    ----------
    members:
        The competing searches.  Names must be unique
        (:attr:`LocalSearch.name` disambiguated with an index suffix
        when needed).
    weights_budget:
        Optional per-member budget fractions (default: equal split).
    """

    name = "portfolio"

    def __init__(
        self,
        members: list[LocalSearch],
        weights_budget: list[float] | None = None,
    ) -> None:
        if not members:
            raise ValueError("portfolio needs at least one member")
        self.members = list(members)
        if weights_budget is None:
            weights_budget = [1.0 / len(members)] * len(members)
        if len(weights_budget) != len(members):
            raise ValueError(
                f"{len(weights_budget)} budget weights for {len(members)} members"
            )
        if any(w <= 0 for w in weights_budget):
            raise ValueError("budget weights must be positive")
        total = sum(weights_budget)
        self.fractions = [w / total for w in weights_budget]
        # Unique display names.
        names: list[str] = []
        seen: dict[str, int] = {}
        for m in self.members:
            base = m.name
            k = seen.get(base, 0)
            seen[base] = k + 1
            names.append(base if k == 0 else f"{base} #{k + 1}")
        self.member_names = names

    def run_portfolio(
        self,
        weights: WeightsLike,
        x0: np.ndarray,
        steps: int,
        seed: SeedLike = None,
        *,
        record_history: bool = False,
    ) -> PortfolioOutcome:
        """Run all members on their budget shares; full breakdown."""
        _, x0c, rng = self._prepare(weights, x0, steps, seed)
        records: dict[str, SearchRecord] = {}
        for name, member, frac in zip(self.member_names, self.members, self.fractions):
            share = max(1, int(steps * frac)) if steps > 0 else 0
            records[name] = member.run(
                weights,
                x0c,
                share,
                seed=int(rng.integers(2**62)),
                record_history=record_history,
            )
        winner = min(records, key=lambda k: records[k].best_energy)
        return PortfolioOutcome(best=records[winner], winner=winner, records=records)

    def run(
        self,
        weights: WeightsLike,
        x0: np.ndarray,
        steps: int,
        seed: SeedLike = None,
        *,
        record_history: bool = False,
    ) -> SearchRecord:
        """LocalSearch interface: the winning member's record."""
        return self.run_portfolio(
            weights, x0, steps, seed, record_history=record_history
        ).best
