"""Tier-1 gate: the analyzer must come back clean on the repo itself.

Any new telemetry drift, global-RNG call, unplumbed config knob,
impure kernel, or exchange-protocol violation in ``src/repro`` fails
this test — turning the project conventions into CI-enforced
invariants (the point of the ``repro.analysis`` subsystem).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import all_rules, analyze_paths
from repro.cli import main

pytestmark = pytest.mark.analysis

PKG_ROOT = Path(repro.__file__).resolve().parent
FIXTURES = Path(__file__).parent / "fixtures"


def test_source_tree_has_no_findings():
    findings = analyze_paths([PKG_ROOT], root=PKG_ROOT.parent)
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_every_rule_registered():
    assert {r.id for r in all_rules()} == {
        "config-plumbing",
        "kernel-purity",
        "lock-discipline",
        "rng-discipline",
        "shm-protocol",
        "telemetry-consistency",
    }


def test_cli_analyze_exits_zero_on_head(capsys):
    assert main(["analyze"]) == 0
    assert "OK: no findings" in capsys.readouterr().out


def test_cli_analyze_exits_nonzero_on_bad_fixture(capsys):
    rc = main(["analyze", str(FIXTURES / "shm_bad"), "--rule", "shm-protocol"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "shm_bad/exchange.py:" in out  # file:line findings
    assert "[shm-protocol]" in out


def test_cli_analyze_json_format(capsys):
    rc = main([
        "analyze", str(FIXTURES / "rng"), "--rule", "rng-discipline",
        "--format", "json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["count"] == len(payload["findings"]) > 0
    assert all(f["rule"] == "rng-discipline" for f in payload["findings"])


def test_cli_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out


def test_cli_unknown_rule_is_an_error(capsys):
    assert main(["analyze", "--rule", "bogus"]) == 2
    assert "unknown rule" in capsys.readouterr().err
