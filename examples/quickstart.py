#!/usr/bin/env python3
"""Quickstart: solve a random QUBO with Adaptive Bulk Search.

Builds a dense 512-bit instance with 16-bit weights (the paper's
synthetic benchmark family), runs ABS for two seconds, and reports the
best energy, the measured search rate, and the convergence trace.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AbsConfig, AdaptiveBulkSearch, QuboMatrix
from repro.utils.timer import format_duration


def main() -> None:
    # 1. An instance: any symmetric integer matrix works.  Here, the
    #    paper's synthetic family — every weight uniform in 16 bits.
    qubo = QuboMatrix.random(512, seed=42)
    print(f"instance: {qubo.name}, n={qubo.n}, weights fit 16 bits: {qubo.is_weight16()}")

    # 2. Configure the framework.  One simulated GPU with 32 CUDA
    #    blocks, each alternating straight search and 64 forced flips
    #    of windowed min-Δ local search; the host GA recombines the
    #    best solutions into new targets.
    config = AbsConfig(
        n_gpus=1,
        blocks_per_gpu=32,
        local_steps=64,
        window="spread",     # per-block temperature ladder
        pool_capacity=48,
        time_limit=2.0,
        seed=7,
    )

    # 3. Solve.
    result = AdaptiveBulkSearch(qubo, config).solve()

    # 4. Inspect.
    print(f"best energy : {result.best_energy}")
    print(f"elapsed     : {format_duration(result.elapsed)}")
    print(f"search rate : {result.search_rate:.3g} solutions/second")
    print(f"rounds      : {result.rounds}, flips: {result.flips}")
    print("convergence  (time, best energy):")
    for t, e in result.history[:: max(1, len(result.history) // 10)]:
        print(f"  {t:7.3f}s  {e}")

    # 5. The returned solution is a plain bit vector; verify it.
    from repro.qubo import energy

    assert energy(qubo, result.best_x) == result.best_energy
    print("solution verified: E(best_x) matches the reported energy")


if __name__ == "__main__":
    main()
