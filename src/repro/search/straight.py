"""Algorithm 5 — straight search from a known solution to a GA target.

Combining the host GA with the local search would normally break the
difference computation, because each GA generation hands the device a
*new* solution whose delta vector is unknown (an O(n²) recomputation).
The straight search avoids this: starting from the current solution
``C`` (whose deltas are live), it repeatedly flips the differing bit
with minimum Δ until it reaches the target ``T``.  The number of flips
equals the Hamming distance, the delta vector stays valid throughout,
and the walk itself is a greedy local search that can escape local
minima (revisiting is impossible since flipped bits never differ again).
"""

from __future__ import annotations

import numpy as np

from repro.qubo.state import SearchState
from repro.utils.validation import check_bit_vector


def straight_search(
    state: SearchState,
    target: np.ndarray,
    *,
    scan_neighbors: bool = False,
) -> tuple[np.ndarray, int, int]:
    """Walk ``state`` to ``target`` greedily along minimum-Δ differing bits.

    Parameters
    ----------
    state:
        Live search state (mutated in place; ends equal to ``target``).
    target:
        The GA-proposed solution ``T``.
    scan_neighbors:
        When ``True``, track the best solution over *all* n neighbors at
        each step (Algorithm 4's inner check); when ``False`` (the
        literal Algorithm 5), only visited solutions are candidates.

    Returns
    -------
    (best_x, best_energy, flips):
        Best solution encountered (including the start), its energy,
        and the number of flips performed (== initial Hamming distance).
    """
    tgt = check_bit_vector(target, state.n, "target")
    best_x = state.x.copy()
    best_e = state.energy

    diff = np.flatnonzero(state.x ^ tgt).astype(np.int64)
    flips = 0
    # Maintain the set of still-differing bit indices; each iteration
    # greedily flips the one with minimum Δ (the paper's line 3).
    remaining = list(diff)
    while remaining:
        deltas = state.delta[remaining]
        pos = int(np.argmin(deltas))
        k = int(remaining.pop(pos))
        state.flip(k)
        flips += 1
        if scan_neighbors:
            j = int(np.argmin(state.delta))
            cand = state.energy + int(state.delta[j])
            if cand < best_e:
                best_e = cand
                best_x = state.x.copy()
                best_x[j] ^= 1
        if state.energy < best_e:
            best_e = state.energy
            best_x = state.x.copy()
    return best_x, best_e, flips
