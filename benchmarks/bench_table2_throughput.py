"""Table 2 — search rate vs bits-per-thread (§4.3).

Three columns are reproduced for every (n, p) configuration the paper
evaluates:

- **occupancy arithmetic** (threads/block, active blocks/GPU) — exact,
  from :mod:`repro.gpusim.occupancy`;
- **modeled rate** — the analytic model calibrated on the published
  table (reproduces the ordering and the bits-per-thread peak at every
  size);
- **measured rate** — the NumPy bulk engine run for real, with the
  block count scaled down (Python cannot host 1088 blocks × 32 k bits,
  and absolute rates are orders of magnitude below an RTX 2080 Ti; the
  measured column demonstrates the engine works and how its rate moves
  with n).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL
from repro.gpusim import BulkSearchEngine, calibrated_model, compute_occupancy
from repro.metrics.search_rate import measure_engine_rate
from repro.paperdata import TABLE_2, TABLE_2_GPUS
from repro.problems.random_qubo import random_qubo
from repro.utils.tables import Table

# Reduced-scale measurement grid: n → (blocks, steps).
_MEASURE = {1024: (64, 48), 2048: (32, 32), 4096: (16, 24)}
if FULL:
    _MEASURE.update({8192: (8, 16), 16384: (4, 12), 32768: (2, 8)})


def test_table2_throughput(benchmark, report):
    model = calibrated_model()
    table = Table(
        [
            "n", "bits/thread", "threads/block", "active blocks",
            "paper rate (T/s)", "model rate (T/s)", "model err",
        ],
        title=f"Table 2 — search rate, {TABLE_2_GPUS} GPUs (modeled vs published)",
    )
    for row in TABLE_2:
        occ = compute_occupancy(row.n, row.bits_per_thread)
        modeled = model.search_rate(row.n, row.bits_per_thread, TABLE_2_GPUS)
        err = abs(modeled - row.rate_tera * 1e12) / (row.rate_tera * 1e12)
        table.add_row(
            [
                row.n,
                row.bits_per_thread,
                occ.threads_per_block,
                occ.active_blocks,
                row.rate_tera,
                modeled / 1e12,
                f"{err:.0%}",
            ]
        )
    # Per-size peak comparison — the shape claim.
    peaks = Table(
        ["n", "paper best p", "model best p", "match"],
        title="Bits-per-thread sweet spot (paper vs model)",
    )
    for n in sorted({r.n for r in TABLE_2}):
        candidates = [r.bits_per_thread for r in TABLE_2 if r.n == n]
        paper_best = max(
            (r for r in TABLE_2 if r.n == n), key=lambda r: r.rate_tera
        ).bits_per_thread
        model_best = max(candidates, key=lambda p: model.search_rate(n, p))
        peaks.add_row([n, paper_best, model_best, "yes" if paper_best == model_best else "NO"])
        assert model_best == paper_best

    measured = Table(
        ["n", "blocks (scaled)", "measured rate (M sol/s)"],
        title="Measured NumPy bulk-engine rate (reduced scale)",
    )
    for n, (blocks, steps) in sorted(_MEASURE.items()):
        q = random_qubo(n, seed=n)
        m = measure_engine_rate(q, blocks, steps=steps, warmup_steps=4)
        measured.add_row([n, blocks, m.rate / 1e6])

    report(
        "Table 2 throughput",
        "\n\n".join([table.render(), peaks.render(), measured.render()])
        + "\n\nNote: the paper's threads/block entries for n=2k, p>=8 are "
        "inconsistent with its own active-block counts; the occupancy "
        "columns above follow the arithmetic (threads = n/p).",
    )

    # pytest-benchmark target: one engine kernel step at the 1k peak
    # configuration (p=16-equivalent window), 64 blocks.
    engine = BulkSearchEngine(random_qubo(1024, seed=1024), 64, windows=16)
    engine.local_steps(4)  # warm
    benchmark(engine.local_steps, 1)
