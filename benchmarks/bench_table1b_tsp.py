"""Table 1(b) — TSP time-to-solution (§4.2).

Runs on seeded synthetic TSPLIB analogues (same city counts).  Targets
follow the paper's scheme: best-known for the small instances (here the
Held–Karp optimum, which is *provably* optimal — stronger than
best-known) and best+5 %/+10 % for the larger ones (reference via
multi-restart 2-opt).  The shape to reproduce: TSP QUBOs are hard —
time-to-solution grows much faster with bits than for Max-Cut or random
instances, because valid tours are ≥ 4 flips apart.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.metrics.tts import time_to_solution
from repro.paperdata import TABLE_1B
from repro.problems.tsp import held_karp, tsp_to_qubo, two_opt
from repro.problems.tsplib import synthetic_instance
from repro.utils.tables import Table

_QUICK = {"ulysses16": 0.02}            # +2 % of optimal in quick mode
_FULL = {
    "ulysses16": 0.0,
    "bayg29": 0.0,
    "dantzig42": 0.05,
    "berlin52": 0.05,
    "st70": 0.10,
}
_REPEATS = 10 if FULL else 3
_TTS_LIMIT_S = 300.0 if FULL else 20.0


def test_table1b_tsp_tts(benchmark, report):
    plan = _FULL if FULL else _QUICK
    table = Table(
        [
            "problem", "bits", "paper target", "paper time (s)",
            "our target len", "our mean TTS (s)", "success",
        ],
        title="Table 1(b) — TSP TTS (synthetic TSPLIB analogues, sync mode)",
    )
    for row in TABLE_1B:
        if row.problem not in plan:
            continue
        inst = synthetic_instance(row.problem)
        if inst.cities <= 17:
            ref_len, _ = held_karp(inst.dist)
        else:
            ref_len, _ = two_opt(inst.dist, seed=0, restarts=6)
        slack = plan[row.problem]
        target_len = int(round(ref_len * (1 + slack)))
        tq = tsp_to_qubo(inst.dist, name=row.problem)
        cfg = AbsConfig(
            blocks_per_gpu=48,
            local_steps=40,
            pool_capacity=64,
            time_limit=_TTS_LIMIT_S,
            seed=3000,
        )
        tts = time_to_solution(
            tq.qubo, tq.length_to_energy(target_len), cfg, repeats=_REPEATS
        )
        table.add_row(
            [
                row.problem,
                tq.n_bits,
                f"{row.target_length} ({row.target_kind})",
                row.time_s,
                f"{target_len} (ref {ref_len} +{slack:.0%})",
                tts.mean_time,
                f"{tts.successes}/{tts.repeats}",
            ]
        )
        assert tts.success_rate > 0, f"{row.problem}: target never reached"

    note = (
        "Synthetic city sets (seeded) with the published instance sizes; "
        "references are Held–Karp exact (c <= 17) or 2-opt.  The paper "
        "lists st70 as 4621 bits; (70-1)^2 = 4761 — presumably a typo."
    )
    report("Table 1b tsp", table.render() + "\n\n" + note)

    inst = synthetic_instance("ulysses16")
    tq = tsp_to_qubo(inst.dist)

    def _one_round():
        AdaptiveBulkSearch(
            tq.qubo,
            AbsConfig(blocks_per_gpu=16, local_steps=16, max_rounds=1, seed=1),
        ).solve("sync")

    benchmark(_one_round)
