"""Fixture: raw shared-memory arithmetic outside the protocol module."""

import numpy as np


def peek(shm, mailbox):
    first = shm.buf[0]
    view = np.ndarray((4,), dtype=np.int64, buffer=shm.buf, offset=32)
    gen = mailbox._header[0]
    return first, view, gen
