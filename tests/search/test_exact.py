"""Tests for the exhaustive exact solver."""

import numpy as np
import pytest

from repro.qubo import QuboMatrix, energy
from repro.search.exact import MAX_EXACT_BITS, ExactSolution, solve_exact


class TestSolveExact:
    def test_matches_python_enumeration(self):
        q = QuboMatrix.random(8, seed=21)
        best = min(
            (
                energy(q, np.array([c >> i & 1 for i in range(8)], dtype=np.uint8))
                for c in range(256)
            )
        )
        assert solve_exact(q).energy == best

    def test_solution_vector_attains_energy(self):
        q = QuboMatrix.random(11, seed=5)
        sol = solve_exact(q)
        assert energy(q, sol.x) == sol.energy

    def test_evaluated_count(self):
        assert solve_exact(QuboMatrix.random(9, seed=0)).evaluated == 512

    def test_zero_matrix_degeneracy(self):
        sol = solve_exact(QuboMatrix.zeros(5))
        assert sol.energy == 0
        assert sol.degeneracy == 32

    def test_unique_minimum_degeneracy_one(self):
        # Strictly negative diagonal, zero couplings: the all-ones
        # vector is the unique minimum.
        W = -np.eye(6, dtype=np.int64)
        sol = solve_exact(QuboMatrix(W))
        assert sol.energy == -6
        assert np.array_equal(sol.x, np.ones(6, dtype=np.uint8))
        assert sol.degeneracy == 1

    def test_empty_problem(self):
        sol = solve_exact(QuboMatrix.zeros(0))
        assert sol.energy == 0 and sol.evaluated == 1

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match=str(MAX_EXACT_BITS)):
            solve_exact(QuboMatrix.zeros(MAX_EXACT_BITS + 1))

    def test_crosses_block_boundaries(self):
        # n = 15 → 32768 solutions = two 16384-solution blocks.
        q = QuboMatrix.random(15, seed=3)
        sol = solve_exact(q)
        assert sol.evaluated == 1 << 15
        assert energy(q, sol.x) == sol.energy

    def test_result_is_frozen(self):
        sol = solve_exact(QuboMatrix.zeros(3))
        with pytest.raises(AttributeError):
            sol.energy = 5
