"""From-scratch consistency check for a :class:`BulkSearchEngine`.

``assert_engine_valid`` is the pytest-facing promotion of
``BulkSearchEngine.validate()``: it recomputes every block's energy and
delta vector from the block's current bit vector (O(B·n²), tests only)
and, on divergence, raises an ``AssertionError`` describing the *first*
diverging block in detail — which entries of the delta vector differ,
by how much, and what the stored vs. recomputed energies are.  The
engine method only names the block; this diff is what you want when a
backend kernel goes subtly wrong.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.engine import BulkSearchEngine
from repro.qubo.energy import delta_vector, energy


def assert_engine_valid(engine: BulkSearchEngine, *, context: str = "") -> None:
    """Assert stored ``energy``/``delta`` match a from-scratch recompute.

    Raises ``AssertionError`` with a diff of the first diverging block.
    ``context`` is prepended to the failure message (e.g. the operation
    sequence that led here, so property-test failures are readable).
    """
    weights = engine.sparse if engine.sparse is not None else engine.W
    prefix = f"{context}: " if context else ""
    for b in range(engine.B):
        e = energy(weights, engine.X[b])
        d = delta_vector(weights, engine.X[b])
        problems = []
        if e != engine.energy[b]:
            problems.append(
                f"energy stored={int(engine.energy[b])} recomputed={int(e)} "
                f"(off by {int(engine.energy[b]) - int(e)})"
            )
        if not np.array_equal(d, engine.delta[b]):
            bad = np.flatnonzero(d != engine.delta[b])
            shown = ", ".join(
                f"delta[{k}] stored={int(engine.delta[b, k])} "
                f"recomputed={int(d[k])}"
                for k in bad[:5]
            )
            more = f" (+{len(bad) - 5} more)" if len(bad) > 5 else ""
            problems.append(f"{len(bad)}/{engine.n} delta entries diverge: {shown}{more}")
        if problems:
            raise AssertionError(
                f"{prefix}block {b} (backend={engine.backend.name}, "
                f"x={_bits_preview(engine.X[b])}): " + "; ".join(problems)
            )


def _bits_preview(x: np.ndarray, limit: int = 32) -> str:
    bits = "".join(str(int(v)) for v in x[:limit])
    return bits + ("…" if x.shape[0] > limit else "")
