"""Tests for the JSONL / memory / logging / progress sinks."""

import json
import logging
import math

import numpy as np
import pytest

from repro.telemetry import (
    JsonlSink,
    LoggingSink,
    MemorySink,
    ProgressReporter,
    TelemetryBus,
    jsonable,
    validate_record,
)


class TestJsonable:
    def test_numpy_scalars(self):
        assert jsonable(np.int64(3)) == 3
        assert type(jsonable(np.int64(3))) is int
        assert jsonable(np.float64(0.5)) == 0.5
        assert jsonable(np.bool_(True)) is True

    def test_nonfinite_floats_become_null(self):
        assert jsonable(math.inf) is None
        assert jsonable(-math.inf) is None
        assert jsonable(math.nan) is None

    def test_arrays_and_containers(self):
        assert jsonable(np.array([1, 2])) == [1, 2]
        assert jsonable((np.int64(1), "a")) == [1, "a"]
        assert jsonable({"k": np.float32(2.0)}) == {"k": 2.0}

    def test_passthrough(self):
        assert jsonable("s") == "s"
        assert jsonable(None) is None


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        """Events written to JSONL parse back and satisfy the schema."""
        path = tmp_path / "trace.jsonl"
        bus = TelemetryBus([JsonlSink(path, flush_every=2)])
        bus.emit(
            "solve.start",
            mode="sync", n=16, n_gpus=1, blocks_per_gpu=4, local_steps=8,
            pool_capacity=16, seed=None, adapt_windows=False,
        )
        bus.emit("engine.local", steps=8, flips=np.int64(32), evaluated=512)
        bus.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        for rec in records:
            validate_record(rec)
        assert records[0]["event"] == "solve.start"
        assert records[0]["seed"] is None
        assert records[1]["flips"] == 32  # numpy int64 serialized as int

    def test_flush_on_close_only_when_buffered(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1000)
        bus = TelemetryBus([sink])
        bus.emit("tick")
        bus.close()
        assert len(path.read_text().strip().splitlines()) == 1

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_bad_flush_every_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JsonlSink(tmp_path / "t.jsonl", flush_every=0)


class TestMemorySink:
    def test_collects_and_filters(self):
        sink = MemorySink()
        bus = TelemetryBus([sink])
        bus.emit("a", x=1)
        bus.emit("b")
        bus.emit("a", x=2)
        assert sink.names() == {"a", "b"}
        assert [e.fields["x"] for e in sink.named("a")] == [1, 2]
        assert [r["event"] for r in sink.records()] == ["a", "b", "a"]


class TestLoggingSink:
    def test_logs_at_debug(self, caplog):
        bus = TelemetryBus([LoggingSink()])
        with caplog.at_level(logging.DEBUG, logger="repro.telemetry"):
            bus.emit("host.round", round=1)
        assert "host.round" in caplog.text


class TestProgressReporter:
    def _round_event_bus(self, reporter):
        bus = TelemetryBus([reporter])
        return bus

    def test_rate_limited_by_interval(self, caplog):
        times = iter([0.0, 0.1, 0.2, 5.0])
        reporter = ProgressReporter(1.0, clock=lambda: next(times))
        bus = self._round_event_bus(reporter)
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            for i in range(4):
                bus.emit("host.round", round=i, device=0, best_energy=-i,
                         pool_size=4, elapsed=0.1 * i)
        assert reporter.reported == 2  # t=0.0 and t=5.0

    def test_solve_end_always_reported(self, caplog):
        reporter = ProgressReporter(1000.0)
        bus = self._round_event_bus(reporter)
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            bus.emit("solve.end", best_energy=-5, rounds=3, elapsed=0.2,
                     evaluated=100, flips=10, reached_target=False)
        assert reporter.reported == 1
        assert "best=-5" in caplog.text

    def test_other_events_ignored(self):
        reporter = ProgressReporter(0.0)
        bus = self._round_event_bus(reporter)
        bus.emit("engine.local", steps=1, flips=1, evaluated=1)
        assert reporter.reported == 0

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            ProgressReporter(-1.0)
