"""Ablation — the selection-window size ``l`` (§2.1, Figure 2).

The window plays the role of an inverse temperature: ``l = 1`` flips
deterministically in sequence (hottest), ``l = n`` is pure greedy
(coldest).  This bench sweeps ``l`` on one instance at a fixed flip
budget and shows the classic annealing trade-off: extreme settings
underperform, a mid-range window (or a spread of windows, the default)
wins — the rationale for the paper's parallel-tempering-like per-block
temperature ladder.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FULL
from repro.gpusim import BulkSearchEngine
from repro.problems.random_qubo import random_qubo
from repro.utils.tables import Table

_N = 512 if FULL else 256
_BLOCKS = 16
_STEPS = 2000 if FULL else 800


def _run(windows) -> int:
    q = random_qubo(_N, seed=_N)
    eng = BulkSearchEngine(q, _BLOCKS, windows=windows)
    eng.local_steps(_STEPS)
    return int(eng.best_energy.min())


def test_ablation_window_size(benchmark, report):
    sweep = [1, 2, 4, 16, 64, _N]
    results = {l: _run(l) for l in sweep}
    ladder = np.geomspace(2, max(16, _N // 4), num=8).astype(np.int64)
    results["spread"] = _run(ladder[np.arange(_BLOCKS) % len(ladder)])

    table = Table(
        ["window l", "temperature analogue", "best energy"],
        title=f"Window-size sweep, n={_N}, {_BLOCKS} blocks × {_STEPS} flips",
    )
    for l in sweep:
        label = (
            "hottest (sequential)" if l == 1
            else "coldest (greedy)" if l == _N
            else ""
        )
        table.add_row([l, label, results[l]])
    table.add_row(["spread", "tempering ladder", results["spread"]])

    report(
        "Ablation window size",
        table.render()
        + "\n\nLarger l exploits, smaller l explores; the ladder hedges "
        "across blocks exactly as the paper suggests.",
    )

    best = min(results.values())
    # The spread ladder must stay competitive: within 1 % of the best
    # setting (on any single instance one fixed l can get lucky, but
    # the ladder never needs per-instance tuning — the paper's point).
    assert results["spread"] <= best + 0.01 * abs(best)
    # And it is never the worst configuration.
    assert results["spread"] < max(results[l] for l in sweep)

    benchmark(lambda: _run(16))
