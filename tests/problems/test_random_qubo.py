"""Tests for the synthetic random-QUBO generator and catalog."""

import numpy as np
import pytest

from repro.problems.random_qubo import RANDOM_CATALOG, catalog_instance, random_qubo
from repro.qubo.matrix import WEIGHT16_MAX, WEIGHT16_MIN


class TestRandomQubo:
    def test_weights_span_16_bits(self):
        q = random_qubo(256, seed=0)
        assert q.W.min() >= WEIGHT16_MIN
        assert q.W.max() <= WEIGHT16_MAX
        assert q.is_weight16()
        # With 256² entries, both extremes of the range get exercised.
        assert q.W.min() < -30000 and q.W.max() > 30000

    def test_symmetric_and_dense(self):
        q = random_qubo(64, seed=1)
        assert np.array_equal(q.W, q.W.T)
        assert q.density() > 0.95

    def test_deterministic(self):
        assert random_qubo(32, seed=5) == random_qubo(32, seed=5)

    def test_name(self):
        assert random_qubo(16, seed=0).name == "random16-16"
        assert random_qubo(16, seed=0, name="custom").name == "custom"


class TestCatalog:
    def test_sizes_match_paper_tables(self):
        assert RANDOM_CATALOG["R1k"].n == 1024
        assert RANDOM_CATALOG["R32k"].n == 32768

    def test_catalog_instance_small(self):
        q = catalog_instance("R1k")
        assert q.n == 1024
        assert q.name == "R1k"

    def test_unknown(self):
        with pytest.raises(KeyError):
            catalog_instance("R64k")

    def test_catalog_instances_deterministic(self):
        assert catalog_instance("R1k") == catalog_instance("R1k")
