"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for CI speed; property tests are numerous, so
# each keeps its example count modest and skips the shrink deadline.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for ad-hoc randomness in tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_qubo():
    """A 16-bit random instance small enough for exhaustive checking."""
    from repro.qubo import QuboMatrix

    return QuboMatrix.random(12, seed=12345)


@pytest.fixture
def medium_qubo():
    """A 64-bit instance for walk-based tests."""
    from repro.qubo import QuboMatrix

    return QuboMatrix.random(64, seed=54321)
