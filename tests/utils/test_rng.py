"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, random_bit_matrix, random_bits, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = as_generator(seq)
        assert isinstance(a, np.random.Generator)


class TestSpawn:
    def test_count(self):
        assert len(spawn(0, 5)) == 5

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)

    def test_children_are_independent_and_stable(self):
        a1, a2 = spawn(99, 2)
        b1, b2 = spawn(99, 2)
        assert np.array_equal(a1.integers(0, 100, 5), b1.integers(0, 100, 5))
        assert not np.array_equal(a1.integers(0, 100, 50), a2.integers(0, 100, 50))

    def test_spawn_from_generator(self):
        g = np.random.default_rng(3)
        kids = spawn(g, 3)
        assert len(kids) == 3


class TestRngFactory:
    def test_streams_are_stable_by_name(self):
        f1, f2 = RngFactory(11), RngFactory(11)
        assert np.array_equal(
            f1.stream("ga").integers(0, 100, 8), f2.stream("ga").integers(0, 100, 8)
        )

    def test_distinct_names_distinct_streams(self):
        f = RngFactory(11)
        a = f.stream("a").integers(0, 1000, 20)
        b = f.stream("b").integers(0, 1000, 20)
        assert not np.array_equal(a, b)

    def test_indexed_streams_differ(self):
        f = RngFactory(5)
        a = f.stream("w", 0).integers(0, 1000, 20)
        b = f.stream("w", 1).integers(0, 1000, 20)
        assert not np.array_equal(a, b)

    def test_streams_helper_matches_stream(self):
        f = RngFactory(5)
        many = f.streams("w", 3)
        single = RngFactory(5).stream("w", 2)
        assert np.array_equal(
            many[2].integers(0, 100, 5), single.integers(0, 100, 5)
        )

    def test_iter_streams(self):
        f = RngFactory(2)
        it = f.iter_streams("x")
        first = next(it)
        second = next(it)
        assert not np.array_equal(
            first.integers(0, 1000, 10), second.integers(0, 1000, 10)
        )

    def test_rejects_generator_seed(self):
        with pytest.raises(TypeError):
            RngFactory(np.random.default_rng(0))

    def test_root_entropy_exposed(self):
        assert RngFactory(123).root_entropy == 123


class TestRandomBits:
    def test_values_are_bits(self, rng):
        x = random_bits(rng, 1000)
        assert x.dtype == np.uint8
        assert set(np.unique(x)) <= {0, 1}

    def test_zero_length(self, rng):
        assert random_bits(rng, 0).shape == (0,)

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            random_bits(rng, -1)

    def test_matrix_shape(self, rng):
        m = random_bit_matrix(rng, 4, 7)
        assert m.shape == (4, 7) and m.dtype == np.uint8

    def test_matrix_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            random_bit_matrix(rng, -1, 3)
