"""Telemetry events: the unit of observation flowing through the bus.

An :class:`Event` is an immutable record of one thing the pipeline did —
a host round completing, a device finishing its ``local_steps`` batch, a
window adaptation firing.  Events carry a name (dotted, lowercase, see
``docs/observability.md`` for the full schema), a timestamp relative to
the bus's creation, a monotone sequence number, and a flat field
mapping.

Field values may be NumPy scalars or small arrays at emit time;
:func:`jsonable` normalizes them to plain JSON types so every sink can
serialize without knowing about NumPy.  Non-finite floats (the pool's
``+∞`` placeholder energies) become ``null`` — standard JSON has no
infinity literal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np


@dataclass(frozen=True)
class Event:
    """One telemetry observation.

    Attributes
    ----------
    name:
        Dotted event name, e.g. ``"host.round"``.
    t:
        Seconds since the owning bus was created (monotonic clock).
    seq:
        1-based emission index on the owning bus — total ordering even
        when two events share a timestamp.
    fields:
        Event payload; keys are documented per event name in
        ``docs/observability.md``.
    """

    name: str
    t: float
    seq: int
    fields: Mapping[str, Any]

    def to_record(self) -> dict[str, Any]:
        """Flat JSON-ready dict: ``{"event", "t", "seq", **fields}``."""
        rec: dict[str, Any] = {"event": self.name, "t": self.t, "seq": self.seq}
        for k, v in self.fields.items():
            rec[k] = jsonable(v)
        return rec


def jsonable(value: Any) -> Any:
    """Coerce ``value`` to a plain JSON type.

    NumPy integers/floats/bools become Python scalars, small arrays
    become lists, non-finite floats become ``None``.  Anything already
    JSON-representable passes through unchanged.
    """
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        f = float(value)
        return f if math.isfinite(f) else None
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return value
