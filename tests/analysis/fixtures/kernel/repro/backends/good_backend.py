"""Fixture backend: pure kernels, immutable module state only.

``prepare_dense`` legitimately does process/filesystem work (runtime
compilation, à la the bitplane backend) — the hot-kernel check must
leave non-hot methods alone.
"""

import subprocess
import tempfile

from repro.backends.base import KernelBackend

_LIMIT = 64


class GoodBackend(KernelBackend):
    name = "good"

    def prepare_dense(self, W):
        workdir = tempfile.mkdtemp()
        subprocess.run(["cc", "--version"], capture_output=True)
        return workdir

    def flip(self, state, k):
        state[k] ^= 1
        return _LIMIT
