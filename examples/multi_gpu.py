#!/usr/bin/env python3
"""Multi-(simulated-)GPU solving — the Figure 5/Figure 8 configuration.

Launches one worker process per simulated GPU: the weight matrix lives
in shared memory (the analogue of each device's global memory), the
host runs the GA and exchanges targets/solutions with the workers
asynchronously, and nobody blocks on anybody.

On a machine with ≥ 4 cores the aggregate search rate scales close to
linearly with the worker count, which is Figure 8's result.  On fewer
cores the workers time-share and the curve flattens — the script
prints the core count so the output is interpretable either way.

Run:  python examples/multi_gpu.py
"""

from __future__ import annotations

import os

from repro import AbsConfig, AdaptiveBulkSearch, QuboMatrix


def main() -> None:
    qubo = QuboMatrix.random(512, seed=99)
    cores = os.cpu_count() or 1
    print(f"host cores: {cores}")
    print(f"instance  : n={qubo.n} dense random\n")

    print(f"{'GPUs':>4}  {'best energy':>14}  {'rate (sol/s)':>12}  {'speedup':>7}")
    base_rate = None
    for gpus in (1, 2, 4):
        config = AbsConfig(
            n_gpus=gpus,
            blocks_per_gpu=16,
            local_steps=64,
            time_limit=2.0,
            seed=5,
        )
        result = AdaptiveBulkSearch(qubo, config).solve(mode="process")
        rate = result.search_rate
        if base_rate is None:
            base_rate = rate
        print(
            f"{gpus:>4}  {result.best_energy:>14}  {rate:>12.3g}  "
            f"{rate / base_rate:>6.2f}x"
        )
    if cores < 4:
        print(
            "\n(measured speedup is limited by the core count here; "
            "the devices themselves never block each other)"
        )


if __name__ == "__main__":
    main()
