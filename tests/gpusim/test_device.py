"""Tests for device specifications."""

import dataclasses

import pytest

from repro.gpusim.device import RTX_2080_TI, TESLA_V100, DeviceSpec, get_device


class TestDeviceSpec:
    def test_rtx_2080_ti_matches_paper(self):
        """§3.2: 64 KB shared, 1024 threads (32 warps), 64 K registers
        per SM, 11 GB global, 68 SMs."""
        d = RTX_2080_TI
        assert d.sm_count == 68
        assert d.max_threads_per_sm == 1024
        assert d.max_warps_per_sm == 32
        assert d.registers_per_sm == 65536
        assert d.shared_mem_per_sm == 65536
        assert d.global_mem == 11 * 1024**3
        assert d.registers_per_thread_at_full_occupancy == 64

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RTX_2080_TI.sm_count = 1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("sm_count", 0),
            ("warp_size", -1),
            ("global_mem", 0),
        ],
    )
    def test_positive_validation(self, field, value):
        kwargs = dict(
            name="x",
            sm_count=1,
            max_threads_per_sm=64,
            max_threads_per_block=64,
            warp_size=32,
            registers_per_sm=1024,
            shared_mem_per_sm=1024,
            global_mem=1024,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            DeviceSpec(**kwargs)

    def test_block_cannot_exceed_sm(self):
        with pytest.raises(ValueError, match="max_threads_per_block"):
            DeviceSpec(
                name="x",
                sm_count=1,
                max_threads_per_sm=64,
                max_threads_per_block=128,
                warp_size=32,
                registers_per_sm=1024,
                shared_mem_per_sm=1024,
                global_mem=1024,
            )

    def test_warp_multiple_required(self):
        with pytest.raises(ValueError, match="warp"):
            DeviceSpec(
                name="x",
                sm_count=1,
                max_threads_per_sm=100,
                max_threads_per_block=64,
                warp_size=32,
                registers_per_sm=1024,
                shared_mem_per_sm=1024,
                global_mem=1024,
            )


class TestGetDevice:
    def test_short_names(self):
        assert get_device("rtx2080ti") is RTX_2080_TI
        assert get_device("v100") is TESLA_V100

    def test_full_name(self):
        assert get_device("NVIDIA GeForce RTX 2080 Ti") is RTX_2080_TI

    def test_normalized_lookup(self):
        assert get_device("RTX 2080 TI") is RTX_2080_TI

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_device("tpu-v9")
