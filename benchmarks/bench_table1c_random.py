"""Table 1(c) — synthetic random problem time-to-solution (§4.2).

The paper's exact random instances are not published (only their
best-found energies), so each size runs a seeded catalog instance: a
calibration pass finds a reference energy, and time-to-solution is then
measured to 99 % of it — the same relative-target scheme as the paper's
16 k/32 k rows.  The shape to reproduce: dense random instances are
*easy* — even multi-thousand-bit problems hit strong targets in well
under the Max-Cut/TSP budgets.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.metrics.tts import time_to_solution
from repro.paperdata import TABLE_1C
from repro.problems.random_qubo import random_qubo
from repro.utils.tables import Table

_QUICK_SIZES = (1024, 2048)
_FULL_SIZES = (1024, 2048, 4096, 16384)  # 32 k = 4 GiB dense; skipped even
# in full mode unless the host has ample RAM — documented substitution.
_REPEATS = 10 if FULL else 3
_CALIBRATE_S = 20.0 if FULL else 2.5
_TTS_LIMIT_S = 120.0 if FULL else 10.0
_FRACTION = 0.99


def test_table1c_random_tts(benchmark, report, bench_record):
    sizes = _FULL_SIZES if FULL else _QUICK_SIZES
    table = Table(
        [
            "bits", "paper target", "paper time (s)",
            "our target energy", "our mean TTS (s)", "success",
        ],
        title="Table 1(c) — random 16-bit QUBO TTS (seeded instances, sync mode)",
    )
    times = {}
    for row in TABLE_1C:
        if row.n not in sizes:
            continue
        qubo = random_qubo(row.n, seed=row.n)
        cfg = dict(blocks_per_gpu=32, local_steps=64, pool_capacity=48)
        calib = AdaptiveBulkSearch(
            qubo, AbsConfig(time_limit=_CALIBRATE_S, seed=4000, **cfg)
        ).solve("sync")
        target = int(_FRACTION * calib.best_energy)  # energies < 0
        bench_record(f"calibrate n={row.n}", calib, target=target)
        tts = time_to_solution(
            qubo,
            target,
            AbsConfig(time_limit=_TTS_LIMIT_S, seed=5000, **cfg),
            repeats=_REPEATS,
        )
        times[row.n] = tts.mean_time
        bench_record(
            f"tts n={row.n}",
            mean_tts_s=tts.mean_time,
            successes=tts.successes,
            repeats=tts.repeats,
        )
        table.add_row(
            [
                row.n,
                f"{row.target_energy} ({row.target_kind})",
                row.time_s,
                f"{target} ({_FRACTION:.0%} of calibrated)",
                tts.mean_time,
                f"{tts.successes}/{tts.repeats}",
            ]
        )
        assert tts.success_rate > 0, f"n={row.n}: target never reached"

    report(
        "Table 1c random",
        table.render()
        + "\n\nSeeded catalog instances; targets relative to a calibrated "
        "best because the paper's exact instances are unpublished.",
    )

    qubo = random_qubo(1024, seed=1024)

    def _one_round():
        AdaptiveBulkSearch(
            qubo,
            AbsConfig(blocks_per_gpu=32, local_steps=64, max_rounds=1, seed=2),
        ).solve("sync")

    benchmark(_one_round)
