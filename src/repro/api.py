"""One-call convenience API.

:func:`solve` wraps the full ABS pipeline for users who just want the
best bit vector for a weight matrix; :func:`solve_ising` accepts an
Ising model (the paper's framing: QUBO ⇔ ground state of an Ising
model) and returns spins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abs.config import AbsConfig, WindowSpec
from repro.abs.result import SolveResult
from repro.abs.solver import AdaptiveBulkSearch
from repro.qubo.ising import IsingModel, ising_to_qubo, bits_to_spins


def solve(
    weights,
    *,
    time_limit: float | None = None,
    max_rounds: int | None = None,
    target_energy: int | None = None,
    n_gpus: int = 1,
    blocks_per_gpu: int = 32,
    local_steps: int = 32,
    window: WindowSpec = "spread",
    adapt_windows: bool = False,
    seed: int | None = None,
    mode: str = "sync",
) -> SolveResult:
    """Solve a QUBO with Adaptive Bulk Search in one call.

    ``weights`` may be a :class:`~repro.qubo.matrix.QuboMatrix`, a dense
    symmetric integer ndarray, or a :class:`~repro.qubo.sparse.SparseQubo`.
    At least one stopping criterion (``time_limit`` / ``max_rounds`` /
    ``target_energy``) must be given; when none is, a 2-second budget is
    applied.

    >>> from repro import QuboMatrix
    >>> from repro.api import solve
    >>> res = solve(QuboMatrix.random(64, seed=0), max_rounds=20, seed=1)
    >>> res.best_energy <= 0
    True
    """
    if time_limit is None and max_rounds is None and target_energy is None:
        time_limit = 2.0
    config = AbsConfig(
        n_gpus=n_gpus,
        blocks_per_gpu=blocks_per_gpu,
        local_steps=local_steps,
        window=window,
        adapt_windows=adapt_windows,
        target_energy=target_energy,
        time_limit=time_limit,
        max_rounds=max_rounds,
        seed=seed,
    )
    return AdaptiveBulkSearch(weights, config).solve(mode)


@dataclass(frozen=True)
class IsingResult:
    """Ising-view of a solve: spins and Hamiltonian value."""

    spins: np.ndarray
    hamiltonian: float
    qubo_result: SolveResult


def solve_ising(model: IsingModel, **solve_kwargs) -> IsingResult:
    """Find a low-energy spin state of an Ising model via ABS.

    The model is converted losslessly to QUBO (§1's equivalence),
    solved, and the result mapped back: ``spins = 2x − 1`` and
    ``hamiltonian = model.energy(spins)`` (offset included).  Accepts
    the same keyword arguments as :func:`solve`.
    """
    qubo, constant = ising_to_qubo(model)
    result = solve(qubo, **solve_kwargs)
    spins = bits_to_spins(result.best_x)
    return IsingResult(
        spins=spins,
        hamiltonian=float(result.best_energy + constant),
        qubo_result=result,
    )
