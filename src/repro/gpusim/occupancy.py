"""Occupancy arithmetic: bits/thread → threads/block → active blocks.

This reproduces the left three columns of the paper's Table 2.  With
``p`` bits handled per thread, an ``n``-bit problem needs
``threads = n / p`` threads per block; at 100 % occupancy each SM hosts
``max_threads_per_sm / threads`` such blocks, so one RTX 2080 Ti runs
``68 · 1024 / threads`` blocks concurrently (e.g. n = 1 k, p = 16 →
64 threads/block → 1088 active blocks, matching the table).

Note: the published table lists "128" threads/block for n = 2 k, p = 8;
that is arithmetically inconsistent with every other row (2048/8 = 256,
and the stated 272 active blocks equals 68·1024/256).  We follow the
arithmetic, and the Table 2 bench flags the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import RTX_2080_TI, DeviceSpec

#: Registers a thread needs besides its p (32-bit) delta values: packed
#: solution bits, loop counters, pointers, and min-reduction temporaries.
#: Calibrated so the Turing budget of 64 registers/thread yields the
#: paper's limits exactly: p ≤ 32 and max problem size 1024 · 32 = 32 k
#: bits ("Since each thread has 64 registers, our system can support up
#: to 32 k-bit QUBO problems", §3.2).
_REGISTER_OVERHEAD = 32


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy computation for one ``(n, p, device)``."""

    n: int
    bits_per_thread: int
    threads_per_block: int
    warps_per_block: int
    blocks_per_sm: int
    active_blocks: int          # per GPU
    occupancy: float            # resident warps / max warps
    registers_per_thread: int

    @property
    def full(self) -> bool:
        """Whether the configuration reaches 100 % occupancy."""
        return self.occupancy >= 1.0 - 1e-12


def compute_occupancy(
    n: int, bits_per_thread: int, device: DeviceSpec = RTX_2080_TI
) -> Occupancy:
    """Occupancy of an ``n``-bit search kernel at ``bits_per_thread``.

    Raises :class:`ValueError` if the configuration cannot launch
    (threads/block over the limit, below one warp, or register
    pressure exceeding the per-SM file at full thread count).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    p = bits_per_thread
    if p < 1:
        raise ValueError(f"bits_per_thread must be >= 1, got {p}")
    threads = -(-n // p)  # ceil division: every bit must be owned
    if threads > device.max_threads_per_block:
        raise ValueError(
            f"n={n} at p={p} needs {threads} threads/block, over the "
            f"{device.max_threads_per_block} limit — increase bits_per_thread"
        )
    if threads < device.warp_size:
        raise ValueError(
            f"n={n} at p={p} needs only {threads} threads/block, below one "
            f"warp ({device.warp_size}) — decrease bits_per_thread"
        )
    regs = p + _REGISTER_OVERHEAD
    if regs > device.registers_per_thread_at_full_occupancy:
        raise ValueError(
            f"p={p} needs ~{regs} registers/thread, over the "
            f"{device.registers_per_thread_at_full_occupancy} available at "
            "full occupancy"
        )
    blocks_per_sm = device.max_threads_per_sm // threads
    resident_warps = blocks_per_sm * (threads // device.warp_size)
    occupancy = resident_warps / device.max_warps_per_sm
    return Occupancy(
        n=n,
        bits_per_thread=p,
        threads_per_block=threads,
        warps_per_block=threads // device.warp_size,
        blocks_per_sm=blocks_per_sm,
        active_blocks=blocks_per_sm * device.sm_count,
        occupancy=occupancy,
        registers_per_thread=regs,
    )


def valid_bits_per_thread(
    n: int, device: DeviceSpec = RTX_2080_TI, *, powers_of_two: bool = True
) -> list[int]:
    """All launchable ``p`` values for an ``n``-bit problem.

    With ``powers_of_two`` (the paper only evaluates powers of two),
    returns the p ∈ {1, 2, 4, …} for which :func:`compute_occupancy`
    succeeds, in increasing order.
    """
    result: list[int] = []
    p = 1
    while p <= max(n, 1):
        try:
            compute_occupancy(n, p, device)
        except ValueError:
            pass
        else:
            result.append(p)
        p = p * 2 if powers_of_two else p + 1
    return result


def sweep_bits_per_thread(
    n: int, device: DeviceSpec = RTX_2080_TI
) -> list[Occupancy]:
    """Occupancy for every valid power-of-two ``p`` (a Table 2 block)."""
    return [compute_occupancy(n, p, device) for p in valid_bits_per_thread(n, device)]


def max_supported_bits(device: DeviceSpec = RTX_2080_TI) -> int:
    """Largest problem the register budget supports (paper: 32 k).

    Each thread can own at most ``regs − overhead`` bits; with at most
    ``max_threads_per_block`` threads that bounds n.
    """
    p_max = device.registers_per_thread_at_full_occupancy - _REGISTER_OVERHEAD
    # For Turing: (64 − 32) = 32 bits/thread × 1024 threads = 32 k bits,
    # exactly the paper's stated capacity.
    return device.max_threads_per_block * p_max
