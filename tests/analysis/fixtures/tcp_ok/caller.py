"""Fixture: sanctioned use of the tcp codec surface."""

from repro.abs.tcp import FrameError, decode_frame, encode_hello


def say_hello(sock):
    sock.sendall(encode_hello(0, 1))


def read_one(buf):
    try:
        return decode_frame(buf, partial_ok=True)
    except FrameError:
        return None
