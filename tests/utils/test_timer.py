"""Tests for the stopwatch and duration formatting."""

import time

import pytest

from repro.utils.timer import Stopwatch, format_duration


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(2.5) == "2.5 s"

    def test_milliseconds(self):
        assert format_duration(0.0042).endswith("ms")

    def test_microseconds(self):
        assert format_duration(5e-6).endswith("µs")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)

    def test_zero(self):
        assert "µs" in format_duration(0.0)


class TestStopwatch:
    def test_accumulates_across_spans(self):
        w = Stopwatch()
        w.start()
        time.sleep(0.01)
        first = w.stop()
        w.start()
        time.sleep(0.01)
        total = w.stop()
        assert total > first > 0

    def test_elapsed_while_running(self):
        w = Stopwatch().start()
        time.sleep(0.005)
        assert w.elapsed > 0
        assert w.running

    def test_stop_idempotent(self):
        w = Stopwatch().start()
        a = w.stop()
        b = w.stop()
        assert a == b
        assert not w.running

    def test_reset(self):
        w = Stopwatch().start()
        time.sleep(0.002)
        w.reset()
        assert w.elapsed == 0.0
        assert not w.running

    def test_start_idempotent_while_running(self):
        w = Stopwatch().start()
        t0 = w._started_at
        w.start()
        assert w._started_at == t0

    def test_context_manager(self):
        with Stopwatch() as w:
            time.sleep(0.002)
        assert w.elapsed > 0
        assert not w.running
