"""Tests for Max-Cut ↔ QUBO (Eq. 17)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.problems.maxcut import (
    cut_value,
    energy_to_cut,
    maxcut_to_qubo,
    random_graph,
    toroidal_graph,
)
from repro.qubo import energy
from repro.search import solve_exact


class TestFormulation:
    def test_paper_figure6_shape(self):
        """Eq. 17: off-diagonal = edge weights, diagonal = −degree."""
        g = nx.Graph()
        g.add_nodes_from(range(3))
        g.add_edge(0, 1, weight=1)
        g.add_edge(1, 2, weight=1)
        q = maxcut_to_qubo(g)
        assert q.W[0, 1] == 1 and q.W[1, 2] == 1
        assert q.W[0, 0] == -1 and q.W[1, 1] == -2 and q.W[2, 2] == -1

    @given(st.integers(0, 2**31 - 1))
    def test_energy_is_negated_cut(self, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(10, 20, weighted=True, seed=seed)
        q = maxcut_to_qubo(g)
        x = rng.integers(0, 2, 10, dtype=np.uint8)
        assert energy(q, x) == -cut_value(g, x)

    def test_energy_to_cut(self):
        assert energy_to_cut(-42) == 42

    def test_ground_state_is_max_cut(self):
        g = random_graph(12, 30, weighted=False, seed=3)
        q = maxcut_to_qubo(g)
        sol = solve_exact(q)
        best_cut = max(
            cut_value(g, np.array([c >> i & 1 for i in range(12)], dtype=np.uint8))
            for c in range(1 << 12)
        )
        assert -sol.energy == best_cut

    def test_self_loop_rejected(self):
        g = nx.Graph()
        g.add_nodes_from(range(2))
        g.add_edge(0, 0)
        with pytest.raises(ValueError, match="self-loop"):
            maxcut_to_qubo(g)

    def test_non_contiguous_nodes_rejected(self):
        g = nx.Graph()
        g.add_nodes_from([0, 2])
        with pytest.raises(ValueError, match="0..n-1"):
            maxcut_to_qubo(g)

    def test_complete_bipartite_cut(self):
        """K_{3,3}: the bipartition cuts all 9 edges."""
        g = nx.complete_bipartite_graph(3, 3)
        x = np.array([0, 0, 0, 1, 1, 1], dtype=np.uint8)
        assert cut_value(g, x) == 9
        assert energy(maxcut_to_qubo(g), x) == -9


class TestGenerators:
    def test_random_graph_edge_count(self):
        g = random_graph(50, 123, seed=0)
        assert g.number_of_edges() == 123
        assert g.number_of_nodes() == 50

    def test_random_graph_unweighted_weights(self):
        g = random_graph(20, 40, weighted=False, seed=1)
        assert all(d["weight"] == 1 for _, _, d in g.edges(data=True))

    def test_random_graph_weighted_weights(self):
        g = random_graph(20, 60, weighted=True, seed=2)
        weights = {d["weight"] for _, _, d in g.edges(data=True)}
        assert weights <= {-1, 1}
        assert len(weights) == 2

    def test_random_graph_deterministic(self):
        a = random_graph(15, 30, seed=7)
        b = random_graph(15, 30, seed=7)
        assert set(a.edges()) == set(b.edges())

    def test_random_graph_validation(self):
        with pytest.raises(ValueError):
            random_graph(1, 0)
        with pytest.raises(ValueError):
            random_graph(5, 100)

    def test_toroidal_graph_structure(self):
        g = toroidal_graph(4, 5, diagonal_fraction=0.0, seed=0)
        assert g.number_of_nodes() == 20
        assert g.number_of_edges() == 40  # 2 per node on a torus
        degrees = [d for _, d in g.degree()]
        assert all(d == 4 for d in degrees)

    def test_toroidal_diagonals_add_edges(self):
        g0 = toroidal_graph(6, 6, diagonal_fraction=0.0, seed=0)
        g1 = toroidal_graph(6, 6, diagonal_fraction=1.0, seed=0)
        assert g1.number_of_edges() == g0.number_of_edges() + 36

    def test_toroidal_validation(self):
        with pytest.raises(ValueError):
            toroidal_graph(1, 5)
        with pytest.raises(ValueError):
            toroidal_graph(3, 3, diagonal_fraction=2.0)
