"""The top-level ABS solver: host + devices in sync or process mode.

``"sync"`` mode interleaves the host loop and device rounds in one
process — deterministic given a seed, and the mode every
time-to-solution benchmark uses.  ``"process"`` mode launches one OS
process per simulated GPU, mirroring the paper's multi-GPU deployment:
the weight matrix lives in shared memory (one copy, like GPU global
memory), targets flow host → device and solutions device → host through
the exchange transport (:mod:`repro.abs.exchange` — bit-packed
shared-memory rings by default, ``multiprocessing.Queue`` as the
fallback), and nobody blocks on anybody — a device that sees no fresh
targets keeps searching from its current state, exactly the paper's
asynchronous tolerance.  ``AbsConfig.lockstep`` trades that freedom for
determinism (workers wait for fresh targets after every round), and
``AbsConfig.pipeline`` double-buffers targets so host GA for round
``i + 1`` overlaps worker execution of round ``i``.

Process mode is additionally *supervised*
(:class:`~repro.abs.supervisor.WorkerSupervisor`): a worker whose
process dies — or, with ``worker_stall_timeout`` set, one that stops
shipping results — is restarted up to ``max_worker_restarts`` times.
A replacement starts from the engine's zero state and is rehydrated
with fresh GA targets from the current pool (the straight-search
handoff of Algorithm 5 makes workers state-free, so nothing else needs
recovering); the shared-memory rings *survive* the restart — the
replacement binds to the same segments under a bumped epoch, so stale
targets are skipped without reallocating anything.  When a worker's
restart budget is exhausted the solve degrades onto the survivors
(``SolveResult.workers_restarted`` / ``workers_lost`` report what
happened) and fails loudly only when no healthy worker remains.  The
multiprocessing start method is configurable via
``AbsConfig.start_method`` (``fork`` where available by default; worker
arguments stay picklable so ``spawn`` works too).
"""

from __future__ import annotations

import math
import time
from multiprocessing import Event, Process

import numpy as np

from repro.abs.adaptive import VariantController, WindowAdapter
from repro.abs.buffers import SharedWeights
from repro.abs.config import AbsConfig, resolve_windows
from repro.abs.variants import SearchVariant, get_variant, resolve_fleet
from repro.abs.device import DeviceSimulator
from repro.abs.exchange import open_worker_endpoint
from repro.abs.fleet import (
    WorkerFleet,
    WorkerJob,
    _counter_snapshot,
    _make_adapter,
    _merge_counts,
    _resolve_start_method,
    assemble_process_result,
    run_device_rounds,
    run_search_rounds,
)
from repro.abs.host import Host
from repro.abs.result import SolveResult
from repro.qubo.matrix import WeightsLike, as_weight_matrix
from repro.telemetry.bus import NULL_BUS, NullBus, RelayBus, TelemetryBus
from repro.utils.rng import RngFactory
from repro.utils.timer import Stopwatch

# _counter_snapshot, _merge_counts and _resolve_start_method moved to
# repro.abs.fleet with the warm-fleet split; the imports above keep
# them addressable here for callers that historically found them here.


class AdaptiveBulkSearch:
    """Adaptive Bulk Search over a QUBO instance.

    Example
    -------
    >>> from repro.qubo import QuboMatrix
    >>> from repro.abs import AdaptiveBulkSearch, AbsConfig
    >>> q = QuboMatrix.random(64, seed=0)
    >>> res = AdaptiveBulkSearch(q, AbsConfig(max_rounds=20, seed=1)).solve()
    >>> res.best_energy <= 0
    True
    """

    def __init__(
        self,
        weights: WeightsLike,
        config: AbsConfig | None = None,
        *,
        telemetry: TelemetryBus | NullBus | None = None,
    ) -> None:
        from repro.qubo.sparse import SparseQubo

        if isinstance(weights, SparseQubo):
            self.W: object = weights
            self.n = weights.n
        else:
            self.W = as_weight_matrix(weights)
            self.n = self.W.shape[0]
        if self.n < 1:
            raise ValueError("problem must have at least one bit")
        self.config = config or AbsConfig(max_rounds=100)
        #: Telemetry bus; :data:`~repro.telemetry.NULL_BUS` (all no-ops)
        #: unless the caller wires one in.  The solver never closes it —
        #: lifecycle belongs to whoever attached the sinks.
        self.bus = telemetry if telemetry is not None else NULL_BUS

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, mode: str = "sync") -> SolveResult:
        """Run to a stopping criterion; returns the best found solution."""
        if mode == "sync":
            return self._solve_sync()
        if mode == "process":
            return self._solve_process()
        raise ValueError(f"unknown mode {mode!r} (use 'sync' or 'process')")

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _met_target(self, energy: float) -> bool:
        t = self.config.target_energy
        return t is not None and energy <= t

    def _fleet(self) -> list[SearchVariant] | None:
        """Per-device Diverse-ABS variants, or ``None`` when disabled."""
        cfg = self.config
        if cfg.variants is None:
            return None
        return resolve_fleet(cfg.variants, cfg.n_gpus)

    def _variant_windows(self, variant: SearchVariant, g: int) -> np.ndarray:
        cfg = self.config
        base = variant.windows(cfg.window, cfg.blocks_per_gpu, self.n)
        return np.roll(base, g)

    def _device_windows(
        self, fleet: list[SearchVariant] | None = None
    ) -> list[np.ndarray]:
        """Per-device window arrays; devices get rotated ladders so the
        temperature spread differs across GPUs.  With a variant fleet,
        each device's ladder comes from its variant's window spec."""
        cfg = self.config
        if fleet is not None:
            return [self._variant_windows(fleet[g], g) for g in range(cfg.n_gpus)]
        base = resolve_windows(cfg.window, cfg.blocks_per_gpu, self.n)
        return [np.roll(base, g) for g in range(cfg.n_gpus)]

    def _make_adapter(self, factory: RngFactory, g: int) -> WindowAdapter | None:
        cfg = self.config
        if not cfg.adapt_windows:
            return None
        return WindowAdapter(
            self.n,
            cfg.blocks_per_gpu,
            period=cfg.adapt_period,
            fraction=cfg.adapt_fraction,
            seed=factory.stream("adapt", g),
            bus=self.bus,
        )

    def _emit_start(self, mode: str) -> None:
        from repro.backends import resolve_backend

        cfg = self.config
        variants = cfg.variants
        if variants is not None and not isinstance(variants, str):
            variants = ",".join(str(v) for v in variants)
        self.bus.emit(
            "solve.start",
            mode=mode,
            n=self.n,
            n_gpus=cfg.n_gpus,
            blocks_per_gpu=cfg.blocks_per_gpu,
            local_steps=cfg.local_steps,
            pool_capacity=cfg.pool_capacity,
            seed=cfg.seed,
            adapt_windows=cfg.adapt_windows,
            # The *active* backend: a requested-but-unavailable numba
            # resolves to numpy here, matching what the engines will do.
            backend=resolve_backend(cfg.backend).name,
            diversity_min_dist=cfg.diversity_min_dist,
            **({"variants": variants} if variants is not None else {}),
        )

    def _emit_end(self, result: SolveResult) -> None:
        self.bus.emit(
            "solve.end",
            best_energy=result.best_energy,
            rounds=result.rounds,
            sweeps=result.sweeps,
            elapsed=result.elapsed,
            evaluated=result.evaluated,
            flips=result.flips,
            reached_target=result.reached_target,
            workers_restarted=result.workers_restarted,
            workers_lost=result.workers_lost,
        )

    # ------------------------------------------------------------------
    # Sync mode
    # ------------------------------------------------------------------
    def _apply_variant(
        self, device: DeviceSimulator, host: Host, variant: SearchVariant, g: int
    ) -> None:
        """Reconfigure device ``g`` (and its GA stream) to ``variant``."""
        cfg = self.config
        device.engine.windows = self._variant_windows(variant, g)
        device.local_steps = variant.effective_local_steps(cfg.local_steps)
        device.scan_neighbors = variant.effective_scan(cfg.scan_neighbors)
        device.set_tabu(variant.tabu_steps, variant.tabu_tenure)
        host.set_device_ga(g, variant.effective_ga(cfg.ga))

    def _sync_targets(
        self, host: Host, fleet: list[SearchVariant] | None
    ) -> np.ndarray:
        """Step 4 for one sync sweep.

        Homogeneous runs keep the single ``make_targets(total)`` call —
        and with it the base RNG draw order, bit-for-bit.  A variant
        fleet generates each device's batch from that device's own
        variant generator.
        """
        cfg = self.config
        if fleet is None:
            return host.make_targets(cfg.total_blocks)
        return np.concatenate(
            [
                host.make_targets(cfg.blocks_per_gpu, device=g)
                for g in range(cfg.n_gpus)
            ]
        )

    def _solve_sync(self) -> SolveResult:
        cfg = self.config
        bus = self.bus
        t_entry = time.perf_counter_ns()
        factory = RngFactory(cfg.seed)
        fleet = self._fleet()
        host = Host(
            self.n,
            cfg.pool_capacity,
            cfg.ga,
            rng_factory=factory,
            bus=bus,
            min_distance=cfg.diversity_min_dist,
            device_ga=(
                [v.effective_ga(cfg.ga) for v in fleet]
                if fleet is not None
                else None
            ),
        )
        windows = self._device_windows(fleet)
        devices = [
            DeviceSimulator(
                self.W,
                cfg.blocks_per_gpu,
                windows=windows[g],
                local_steps=(
                    fleet[g].effective_local_steps(cfg.local_steps)
                    if fleet is not None
                    else cfg.local_steps
                ),
                scan_neighbors=(
                    fleet[g].effective_scan(cfg.scan_neighbors)
                    if fleet is not None
                    else cfg.scan_neighbors
                ),
                adapter=self._make_adapter(factory, g),
                backend=cfg.backend,
                bus=bus,
                device_id=g,
                tabu_steps=fleet[g].tabu_steps if fleet is not None else 0,
                tabu_tenure=fleet[g].tabu_tenure if fleet is not None else None,
            )
            for g in range(cfg.n_gpus)
        ]
        controller = (
            VariantController(
                [v.name for v in fleet],
                period=cfg.variant_adapt_period,
                bus=bus,
            )
            if fleet is not None and cfg.variant_adapt
            else None
        )

        if bus.enabled:
            self._emit_start("sync")
        setup_ns = time.perf_counter_ns() - t_entry
        watch = Stopwatch().start()
        targets = host.initial_targets(cfg.total_blocks)
        history: list[tuple[float, int]] = []
        rounds = 0
        rounds_by_device = [0] * cfg.n_gpus
        time_to_target: float | None = None
        done = False

        while not done:
            for g, device in enumerate(devices):
                lo = g * cfg.blocks_per_gpu
                batch = np.ascontiguousarray(
                    targets[lo : lo + cfg.blocks_per_gpu]
                )
                energies, xs = device.round(batch)
                host.absorb_batch(energies, xs)
                if controller is not None:
                    controller.observe(g, float(energies.min()))
                rounds += 1
                rounds_by_device[g] += 1
                if bus.enabled:
                    bus.counters.inc("host.rounds")
                    bus.emit(
                        "host.round",
                        round=rounds,
                        device=g,
                        best_energy=host.best_energy,
                        pool_size=len(host.pool),
                        elapsed=watch.elapsed,
                    )
                if self._met_target(host.best_energy):
                    if time_to_target is None:
                        time_to_target = watch.elapsed
                    done = True
                    break
                if cfg.time_limit is not None and watch.elapsed >= cfg.time_limit:
                    done = True
                    break
                if cfg.max_rounds is not None and rounds >= cfg.max_rounds:
                    done = True
                    break
            if math.isfinite(host.best_energy):
                history.append((watch.elapsed, int(host.best_energy)))
            if not done:
                if controller is not None:
                    move = controller.end_sweep()
                    if move is not None:
                        moved, _, to_name = move
                        self._apply_variant(
                            devices[moved], host, get_variant(to_name), moved
                        )
                targets = self._sync_targets(host, fleet)

        elapsed = watch.stop()
        evaluated = sum(d.evaluated for d in devices)
        flips = sum(d.engine.counters.flips for d in devices)
        engine_counts: dict[str, int] = {}
        for d in devices:
            _merge_counts(engine_counts, d.engine.counters.as_dict())
        adapt_total = sum(
            d.adapter.adaptations for d in devices if d.adapter is not None
        )
        nonfinite_total = sum(
            d.adapter.nonfinite_observations
            for d in devices
            if d.adapter is not None
        )
        if controller is not None:
            nonfinite_total += controller.nonfinite_observations
        variant_extra = {
            "adapt.nonfinite_observations": nonfinite_total,
            "adapt.variant_reassignments": (
                controller.reassignments if controller is not None else 0
            ),
            "variant.tabu_steps": sum(d.tabu_steps_done for d in devices),
        }
        best_x = host.best_x if host.best_x is not None else np.zeros(self.n, np.uint8)
        best_e = int(host.best_energy) if math.isfinite(host.best_energy) else 0
        result = SolveResult(
            best_x=best_x,
            best_energy=best_e,
            elapsed=elapsed,
            rounds=rounds,
            sweeps=min(rounds_by_device),
            evaluated=evaluated,
            flips=flips,
            reached_target=self._met_target(host.best_energy),
            time_to_target=time_to_target,
            history=history,
            n_gpus=cfg.n_gpus,
            counters=_counter_snapshot(
                host, engine_counts, adapt_total, extra=variant_extra
            ),
            pool_mean_distance=host.pool.mean_pairwise_distance(),
            setup_ns=setup_ns,
            search_ns=int(round(elapsed * 1e9)),
        )
        if bus.enabled:
            bus.counters.inc("solver.setup_ns", result.setup_ns)
            bus.counters.inc("solver.search_ns", result.search_ns)
            self._emit_end(result)
        return result

    # ------------------------------------------------------------------
    # Process mode
    # ------------------------------------------------------------------
    def _solve_process(self) -> SolveResult:
        cfg = self.config
        bus = self.bus
        t_entry = time.perf_counter_ns()
        if cfg.variant_adapt:
            raise ValueError(
                "variant_adapt is sync-mode only: process-mode fleets are "
                "static (workers are spawned with their variant baked in)"
            )
        factory = RngFactory(cfg.seed)
        fleet = self._fleet()
        host = Host(
            self.n,
            cfg.pool_capacity,
            cfg.ga,
            rng_factory=factory,
            bus=bus,
            min_distance=cfg.diversity_min_dist,
            device_ga=(
                [v.effective_ga(cfg.ga) for v in fleet]
                if fleet is not None
                else None
            ),
        )
        windows = self._device_windows(fleet)

        from repro.qubo.sparse import SparseQubo

        workers = WorkerFleet(
            self.n,
            exchange=cfg.exchange,
            n_workers=cfg.n_gpus,
            n_blocks=cfg.blocks_per_gpu,
            bus=bus,
            max_restarts=cfg.max_worker_restarts,
            stall_timeout=cfg.worker_stall_timeout,
            start_method=cfg.start_method,
        )
        ctx = workers.ctx
        stop_evt = workers.stop_evt
        transport = workers.transport
        # Dense matrices go through shared memory (they are the bulk of
        # the footprint — the analogue of GPU global memory).  Sparse
        # problems are small; they ship to workers by pickling.
        if isinstance(self.W, SparseQubo):
            shared = None
            weights_ref = ("sparse", self.W)
        else:
            shared = SharedWeights.create(
                np.ascontiguousarray(self.W, dtype=np.int64)
            )
            weights_ref = ("shm", shared.descriptor)
        adapt_seeds = [
            int(factory.stream("adapt-seed", g).integers(2**62))
            for g in range(cfg.n_gpus)
        ]

        def _spawn(g: int, incarnation: int, channel: object) -> "Process":
            # Resolved at call time so tests can monkeypatch the module
            # attribute and have replacements pick the patch up too.
            p = ctx.Process(
                target=_worker_main,
                args=(
                    g,
                    incarnation,
                    weights_ref,
                    cfg.blocks_per_gpu,
                    windows[g],
                    (
                        fleet[g].effective_local_steps(cfg.local_steps)
                        if fleet is not None
                        else cfg.local_steps
                    ),
                    (
                        fleet[g].effective_scan(cfg.scan_neighbors)
                        if fleet is not None
                        else cfg.scan_neighbors
                    ),
                    (
                        (fleet[g].tabu_steps, fleet[g].tabu_tenure)
                        if fleet is not None
                        else (0, None)
                    ),
                    cfg.backend,
                    (
                        cfg.adapt_windows,
                        cfg.adapt_period,
                        cfg.adapt_fraction,
                        adapt_seeds[g],
                    ),
                    transport.worker_ref(g, incarnation, channel),
                    stop_evt,
                    bus.enabled,
                    cfg.lockstep,
                ),
                daemon=True,
            )
            p.start()
            return p

        setup_ns = time.perf_counter_ns() - t_entry
        watch = Stopwatch().start()
        if bus.enabled:
            self._emit_start("process")
            bus.emit("exchange.open", **transport.describe())
        try:
            workers.start(_spawn)
            outcome = run_search_rounds(
                cfg, host, workers, watch, bus=bus, met_target=self._met_target
            )
        finally:
            workers.shutdown()
            if shared is not None:
                shared.unlink()

        elapsed = watch.stop()
        result = assemble_process_result(
            cfg,
            self.n,
            host,
            outcome,
            elapsed,
            met_target=self._met_target,
            bus=bus,
            restarts=workers.supervisor.workers_restarted,
            lost=workers.supervisor.workers_lost,
            transport_stats=dict(transport.stats),
            setup_ns=setup_ns,
            search_ns=int(round(elapsed * 1e9)),
        )
        if bus.enabled:
            self._emit_end(result)
        return result

    def solve_on_fleet(
        self,
        workers: WorkerFleet,
        *,
        digest: str | None = None,
        cancelled=None,
    ) -> SolveResult:
        """Run one process-mode job on a persistent warm fleet.

        The service path: instead of spawning processes and building a
        transport (what :meth:`_solve_process` pays on every call), the
        job is pushed onto an already-running :class:`WorkerFleet` via
        its re-arm handshake.  Everything search-relevant — RNG factory,
        host pool, GA target sequence, device windows, adapt seeds — is
        constructed exactly as in a one-shot solve, so a seeded job run
        here is bit-identical to ``solve("process")``.

        ``digest`` (the problem digest from
        :func:`repro.qubo.io.problem_digest`) keys the fleet's
        shared-memory weights cache and the workers' prepared-weights
        caches; ``None`` disables both reuses.  ``cancelled`` is an
        optional zero-arg callable polled between rounds.
        """
        from repro.abs.exchange import resolve_exchange

        cfg = self.config
        bus = self.bus
        t_entry = time.perf_counter_ns()
        if cfg.variant_adapt:
            raise ValueError(
                "variant_adapt is sync-mode only: process-mode fleets are "
                "static (workers are spawned with their variant baked in)"
            )
        wanted = (
            resolve_exchange(cfg.exchange),
            cfg.n_gpus,
            cfg.blocks_per_gpu,
            self.n,
        )
        if workers.geometry != wanted:
            raise ValueError(
                f"fleet geometry {workers.geometry} does not match job "
                f"{wanted}; build a new fleet for this configuration"
            )
        factory = RngFactory(cfg.seed)
        fleet = self._fleet()
        host = Host(
            self.n,
            cfg.pool_capacity,
            cfg.ga,
            rng_factory=factory,
            bus=bus,
            min_distance=cfg.diversity_min_dist,
            device_ga=(
                [v.effective_ga(cfg.ga) for v in fleet]
                if fleet is not None
                else None
            ),
        )
        windows = self._device_windows(fleet)
        adapt_seeds = [
            int(factory.stream("adapt-seed", g).integers(2**62))
            for g in range(cfg.n_gpus)
        ]
        weights_ref, _weights_hit = workers.weights_ref_for(self.W, digest)
        job_seq = workers.next_job_seq()
        jobs = [
            WorkerJob(
                job_seq=job_seq,
                weights_ref=weights_ref,
                digest=digest,
                n_blocks=cfg.blocks_per_gpu,
                windows=windows[g],
                local_steps=(
                    fleet[g].effective_local_steps(cfg.local_steps)
                    if fleet is not None
                    else cfg.local_steps
                ),
                scan_neighbors=(
                    fleet[g].effective_scan(cfg.scan_neighbors)
                    if fleet is not None
                    else cfg.scan_neighbors
                ),
                tabu_params=(
                    (fleet[g].tabu_steps, fleet[g].tabu_tenure)
                    if fleet is not None
                    else (0, None)
                ),
                backend=cfg.backend,
                adapt_params=(
                    cfg.adapt_windows,
                    cfg.adapt_period,
                    cfg.adapt_fraction,
                    adapt_seeds[g],
                ),
                telemetry_enabled=bus.enabled,
                lockstep=cfg.lockstep,
            )
            for g in range(cfg.n_gpus)
        ]
        sup = workers.supervisor
        base_restarts = sup.workers_restarted
        base_lost = sup.workers_lost
        base_stats = dict(workers.transport.stats)
        if bus.enabled:
            self._emit_start("process")
            bus.emit("exchange.open", **workers.transport.describe())
        workers.arm_job(jobs)
        setup_ns = time.perf_counter_ns() - t_entry
        watch = Stopwatch().start()
        outcome = run_search_rounds(
            cfg,
            host,
            workers,
            watch,
            bus=bus,
            met_target=self._met_target,
            job_seq=job_seq,
            cancelled=cancelled,
        )
        elapsed = watch.stop()
        stats_now = workers.transport.stats
        result = assemble_process_result(
            cfg,
            self.n,
            host,
            outcome,
            elapsed,
            met_target=self._met_target,
            bus=bus,
            restarts=sup.workers_restarted - base_restarts,
            lost=sup.workers_lost - base_lost,
            transport_stats={
                k: int(v) - int(base_stats.get(k, 0))
                for k, v in stats_now.items()
            },
            setup_ns=setup_ns,
            search_ns=int(round(elapsed * 1e9)),
        )
        if bus.enabled:
            self._emit_end(result)
        return result


def _worker_main(
    worker_id: int,
    incarnation: int,
    weights_ref: tuple,
    n_blocks: int,
    windows: np.ndarray,
    local_steps: int,
    scan_neighbors: bool,
    tabu_params: tuple,
    backend: str | None,
    adapt_params: tuple,
    exchange_ref: tuple,
    stop_evt: "Event",
    telemetry_enabled: bool,
    lockstep: bool,
) -> None:
    """Device-process entry point (module-level for picklability).

    ``weights_ref`` is ``("shm", descriptor)`` for a dense matrix in
    shared memory or ``("sparse", SparseQubo)`` shipped by pickle;
    ``exchange_ref`` selects and parameterizes the worker side of the
    exchange transport (see :func:`repro.abs.exchange.
    open_worker_endpoint`).  Runs rounds forever: refresh targets if
    the host published fresh ones (otherwise keep the previous ones —
    the device never idles, unless ``lockstep`` asks it to wait), run
    Steps 3–5, ship the per-block bests (bit-packed on the shm
    transport) with cumulative counters and the incarnation number (so
    the host can discard counter updates from a killed predecessor),
    and — when telemetry is on — the worker-side events
    (``device.round``, ``engine.*``, ``adapt.windows``) buffered on a
    :class:`~repro.telemetry.RelayBus` for the host to re-emit with
    this worker's id.
    """
    kind, payload = weights_ref
    if kind == "shm":
        shared = SharedWeights.attach(payload)
        weights = shared.array
    else:
        shared = None
        weights = payload
    relay = RelayBus() if telemetry_enabled else NULL_BUS
    adapter = _make_adapter(
        weights.n if hasattr(weights, "n") else weights.shape[0],
        n_blocks,
        adapt_params,
        relay,
    )
    endpoint = open_worker_endpoint(
        exchange_ref,
        worker_id=worker_id,
        incarnation=incarnation,
        stop_evt=stop_evt,
    )
    tabu_steps, tabu_tenure = tabu_params
    try:
        device = DeviceSimulator(
            weights,
            n_blocks,
            windows=windows,
            local_steps=local_steps,
            scan_neighbors=scan_neighbors,
            adapter=adapter,
            backend=backend,
            bus=relay,
            device_id=worker_id,
            tabu_steps=tabu_steps,
            tabu_tenure=tabu_tenure,
        )
        run_device_rounds(
            device, endpoint, adapter, relay, stop_evt, lockstep,
            telemetry_enabled,
        )
    except (KeyboardInterrupt, BrokenPipeError):  # parent went away
        pass
    finally:
        endpoint.close()
        if shared is not None:
            shared.close()
