"""Cross-feature integration: combinations the unit tests don't cover.

Each extension (sparse backend, adaptive windows, decomposition,
checkpointing) is tested in isolation elsewhere; these tests exercise
them *together*, which is how a downstream user will actually run them.
"""

import numpy as np
import pytest

from repro.abs import (
    AbsConfig,
    AdaptiveBulkSearch,
    DecompositionConfig,
    DecompositionSolver,
    WindowAdapter,
    load_engine,
    save_engine,
)
from repro.abs.device import DeviceSimulator
from repro.gpusim import BulkSearchEngine
from repro.problems import maxcut_to_sparse_qubo, random_graph, cut_value
from repro.qubo import QuboMatrix, SparseQubo, energy


@pytest.fixture
def graph():
    return random_graph(48, 160, weighted=True, seed=21)


@pytest.fixture
def sparse(graph):
    return maxcut_to_sparse_qubo(graph)


class TestSparsePlusAdaptive:
    def test_sparse_engine_with_window_adaptation(self, sparse):
        adapter = WindowAdapter(sparse.n, 8, period=2, seed=1)
        dev = DeviceSimulator(
            sparse, 8, windows=np.full(8, 2, dtype=np.int64),
            local_steps=12, adapter=adapter,
        )
        rng = np.random.default_rng(0)
        for _ in range(8):
            dev.round(rng.integers(0, 2, (8, sparse.n), dtype=np.uint8))
        assert adapter.adaptations > 0
        dev.engine.validate()

    def test_sparse_solver_with_adaptation(self, graph, sparse):
        cfg = AbsConfig(
            blocks_per_gpu=8, local_steps=16, max_rounds=12,
            adapt_windows=True, adapt_period=2, seed=2,
        )
        res = AdaptiveBulkSearch(sparse, cfg).solve("sync")
        assert cut_value(graph, res.best_x) == -res.best_energy


class TestSparsePlusCheckpoint:
    def test_checkpointed_sparse_engine_resumes_identically(self, sparse, tmp_path):
        eng = BulkSearchEngine(sparse, 4, windows=8)
        eng.local_steps(20)
        ckpt = tmp_path / "s.npz"
        save_engine(eng, ckpt)
        eng.local_steps(30)
        resumed = load_engine(sparse, ckpt)
        resumed.local_steps(30)
        assert np.array_equal(resumed.X, eng.X)
        assert np.array_equal(resumed.best_energy, eng.best_energy)


class TestDecomposePlusSparsePlusSelection:
    @pytest.mark.parametrize("selection", ["delta", "random"])
    def test_decomposition_over_sparse_maxcut(self, graph, sparse, selection):
        cfg = DecompositionConfig(
            subproblem_size=12, iterations=12, selection=selection,
            patience=6, seed=3,
        )
        res = DecompositionSolver(sparse, cfg).solve()
        assert sparse.energy(res.best_x) == res.best_energy
        assert cut_value(graph, res.best_x) == -res.best_energy

    def test_decomposition_matches_direct_solve_quality_band(self, sparse):
        """The outer loop should land within 10 % of a direct ABS solve
        of comparable effort on this small instance."""
        direct = AdaptiveBulkSearch(
            sparse,
            AbsConfig(blocks_per_gpu=16, local_steps=32, max_rounds=20, seed=4),
        ).solve("sync")
        decomp = DecompositionSolver(
            sparse,
            DecompositionConfig(subproblem_size=16, iterations=25, seed=4),
        ).solve()
        assert decomp.best_energy <= 0.9 * direct.best_energy  # energies < 0


class TestIsingApiPlusSparse:
    def test_dense_to_sparse_to_solve_pipeline(self):
        """QuboMatrix → SparseQubo → api.solve round trip."""
        from repro.api import solve

        q = QuboMatrix.random(40, seed=5)
        # Dense random is 100% dense; conversion must still behave.
        sq = SparseQubo.from_dense(q)
        a = solve(q, max_rounds=6, seed=6)
        b = solve(sq, max_rounds=6, seed=6)
        assert a.best_energy == b.best_energy
        assert np.array_equal(a.best_x, b.best_x)
