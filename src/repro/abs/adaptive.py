"""Adaptive per-block search-parameter tuning (paper §5, future work).

The paper closes with: *"an application-agnostic universal QUBO solver
can be considered.  To this end, each CUDA block would perform
different algorithms and possibly they are changed automatically."*

This module implements that idea for the one knob the Figure-2 policy
exposes — the selection-window size ``l`` (the temperature analogue).
A :class:`WindowAdapter` watches each block's per-round best energy
and, every ``period`` rounds, reassigns the windows of the worst
blocks:

1. blocks are ranked by their mean round-best energy over the period;
2. the bottom ``fraction`` of blocks each adopt the window of a random
   top-``fraction`` block, multiplied or divided by 2 (clamped to
   ``[1, n]``) so the ladder keeps exploring neighbouring temperatures;
3. counters reset and the next period begins.

The adaptation is deterministic given its RNG stream, so solver runs
remain reproducible by seed.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus
from repro.utils.rng import SeedLike, as_generator


class WindowAdapter:
    """Evolves per-block window sizes toward what is currently working.

    Parameters
    ----------
    n:
        Problem size (windows are clamped to ``[1, n]``).
    n_blocks:
        Number of blocks whose windows are managed.
    period:
        Rounds between adaptations.
    fraction:
        Share of blocks replaced (and imitated) per adaptation.
    seed:
        RNG stream for donor selection and perturbation direction.
    bus:
        Optional telemetry bus; each adaptation emits one
        ``adapt.windows`` event (the window-size trajectory).
    """

    def __init__(
        self,
        n: int,
        n_blocks: int,
        *,
        period: int = 4,
        fraction: float = 0.25,
        seed: SeedLike = None,
        bus: TelemetryBus | NullBus | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not (0.0 < fraction <= 0.5):
            raise ValueError(f"fraction must be in (0, 0.5], got {fraction}")
        self.n = int(n)
        self.B = int(n_blocks)
        self.period = int(period)
        self.fraction = float(fraction)
        self._rng = as_generator(seed)
        self._bus = bus if bus is not None else NULL_BUS
        self._sums = np.zeros(self.B, dtype=np.float64)
        self._rounds = 0
        #: Total window reassignments performed (diagnostics).
        self.adaptations = 0

    def observe(self, round_best: np.ndarray) -> None:
        """Record each block's best energy for the finished round."""
        rb = np.asarray(round_best, dtype=np.float64)
        if rb.shape != (self.B,):
            raise ValueError(f"round_best must have shape ({self.B},), got {rb.shape}")
        self._sums += rb
        self._rounds += 1

    @property
    def ready(self) -> bool:
        """Whether a full period has been observed."""
        return self._rounds >= self.period

    def adapt(self, windows: np.ndarray) -> np.ndarray:
        """Return the adapted copy of ``windows`` and reset the period.

        Call only when :attr:`ready`; raises otherwise.
        """
        if not self.ready:
            raise RuntimeError(
                f"adapt() called after {self._rounds}/{self.period} rounds"
            )
        w = np.asarray(windows, dtype=np.int64).copy()
        if w.shape != (self.B,):
            raise ValueError(f"windows must have shape ({self.B},), got {w.shape}")
        k = max(1, int(self.B * self.fraction))
        order = np.argsort(self._sums)  # ascending mean energy = best first
        winners = order[:k]
        losers = order[-k:]
        donors = self._rng.choice(winners, size=k, replace=True)
        factors = self._rng.choice((0.5, 1.0, 2.0), size=k)
        new = np.clip((w[donors] * factors).astype(np.int64), 1, self.n)
        w[losers] = np.maximum(new, 1)
        self.adaptations += k
        self._sums.fill(0.0)
        self._rounds = 0
        bus = self._bus
        if bus.enabled:
            bus.counters.inc("adapt.reassignments", k)
            bus.emit(
                "adapt.windows",
                reassigned=k,
                window_min=int(w.min()),
                window_max=int(w.max()),
                window_mean=float(w.mean()),
            )
        return w

    def maybe_adapt(self, windows: np.ndarray) -> np.ndarray | None:
        """``adapt`` if a period has elapsed, else ``None``."""
        if not self.ready:
            return None
        return self.adapt(windows)
