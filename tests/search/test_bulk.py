"""Tests specific to Algorithm 4 (the proposed bulk local search)."""

import numpy as np
import pytest

from repro.qubo import QuboMatrix, energy
from repro.search import (
    BulkLocalSearch,
    GreedyPolicy,
    RandomPolicy,
    WindowMinDeltaPolicy,
    solve_exact,
)


@pytest.fixture
def problem():
    return QuboMatrix.random(14, seed=31415)


class TestOptimality:
    def test_multi_start_reaches_exact_optimum(self):
        """A single deterministic forced-flip walk can limit-cycle (the
        paper pairs it with GA restarts); a handful of diversified
        starts must reach the exact ground state on small instances."""
        rng = np.random.default_rng(0)
        for seed in (1, 2, 3):
            q = QuboMatrix.random(12, seed=seed)
            opt = solve_exact(q).energy
            best = None
            for r in range(8):
                x0 = rng.integers(0, 2, 12, dtype=np.uint8)
                rec = BulkLocalSearch(WindowMinDeltaPolicy(3, offset=r)).run(
                    q, x0, steps=300, seed=r
                )
                best = rec.best_energy if best is None else min(best, rec.best_energy)
            assert best == opt

    def test_forced_flips_escape_local_minima(self, problem):
        """Unlike descent, Algorithm 4 keeps moving after a minimum."""
        rec = BulkLocalSearch(WindowMinDeltaPolicy(2)).run(
            problem, np.zeros(problem.n, dtype=np.uint8), steps=300, seed=0
        )
        assert rec.flips >= 300  # every step flips


class TestStartModes:
    def test_start_from_zero_op_count_is_exact(self, problem, rng):
        """Zero start costs n ops per flip (prefix + steps), never n²."""
        x0 = rng.integers(0, 2, problem.n, dtype=np.uint8)
        rec = BulkLocalSearch(start_from_zero=True).run(problem, x0, 50, seed=1)
        n = problem.n
        popcount = int(x0.sum())
        assert rec.ops == n * (popcount + 50)

    def test_direct_start_pays_quadratic_once(self, problem, rng):
        x0 = rng.integers(0, 2, problem.n, dtype=np.uint8)
        rec = BulkLocalSearch(start_from_zero=False).run(problem, x0, 50, seed=1)
        n = problem.n
        assert rec.ops == n * n + n * 50

    def test_both_modes_walk_identically_after_start(self, problem, rng):
        """The prefix differs but the subsequent trajectory must match."""
        x0 = rng.integers(0, 2, problem.n, dtype=np.uint8)
        a = BulkLocalSearch(WindowMinDeltaPolicy(4), start_from_zero=True).run(
            problem, x0, 100, seed=3
        )
        b = BulkLocalSearch(WindowMinDeltaPolicy(4), start_from_zero=False).run(
            problem, x0, 100, seed=3
        )
        assert np.array_equal(a.final_x, b.final_x)
        assert a.final_energy == b.final_energy


class TestPolicies:
    def test_greedy_policy_first_step_takes_min_delta(self, problem):
        from repro.qubo import SearchState

        st = SearchState.zeros(problem)
        k_expected = int(np.argmin(st.delta))
        rec = BulkLocalSearch(GreedyPolicy()).run(
            problem, np.zeros(problem.n, dtype=np.uint8), 1, seed=0
        )
        assert rec.final_x[k_expected] == 1

    def test_random_policy_runs(self, problem):
        rec = BulkLocalSearch(RandomPolicy()).run(
            problem, np.zeros(problem.n, dtype=np.uint8), 50, seed=5
        )
        assert rec.flips >= 50

    def test_policy_not_shared_between_runs(self, problem):
        """Each run clones the policy, so offsets never leak."""
        search = BulkLocalSearch(WindowMinDeltaPolicy(4))
        a = search.run(problem, np.zeros(problem.n, dtype=np.uint8), 40, seed=1)
        b = search.run(problem, np.zeros(problem.n, dtype=np.uint8), 40, seed=1)
        assert np.array_equal(a.final_x, b.final_x)


class TestBestTracking:
    def test_best_can_be_unvisited_neighbor(self):
        """The incumbent may come from the neighbor scan, not the walk:
        best_x need not equal any visited position, only a Hamming-1
        neighbor of one — and its energy must check out."""
        q = QuboMatrix.random(10, seed=99)
        rec = BulkLocalSearch(WindowMinDeltaPolicy(2)).run(
            q, np.zeros(10, dtype=np.uint8), 200, seed=0
        )
        assert rec.best_energy == energy(q, rec.best_x)
        # The incumbent beats every *visited* final-position energy.
        assert rec.best_energy <= rec.final_energy
